//! Benchmark trajectory report: trial throughput at tracked configs.
//!
//! ```text
//! cargo run --release -p farm-bench --bin report -- --label after
//! ```
//!
//! Runs the small and medium `bench_sim` configurations, times full
//! six-year Monte-Carlo trials single-threaded (events/sec — the
//! optimization-tracking metric, independent of core count) and at the
//! default thread count (trials/sec), splits each trial's wall time
//! into setup (workspace obtain: recycle or construct + placement) and
//! event loop, samples peak RSS (an explicit `null` on platforms where
//! it is unavailable), reports the vulnerability-window percentiles of
//! the timed batch, measures the observability overhead (event-loop
//! profiling on vs off), probes the cluster-state telemetry overhead
//! (timeline + flight recorder on vs off, interleaved to cancel machine
//! drift), probes the live campaign monitor the same way (status
//! snapshots + /metrics exporter on vs off), probes the convergence
//! stream the same way (`FARM_CONVERGENCE`-style JSONL checkpoints on
//! vs off), probes recovery-span tracing the same way (`FARM_SPANS`
//! per-repair span rows + bandwidth attribution on vs off), isolates
//! the incremental `LiveGauges` maintenance cost
//! (timeline attached with an interval past the horizon so no sample
//! is ever taken — the `bench_gauges` pair), splits per-trial setup
//! time into its phases (state reset, disk installation, placement)
//! via `Simulation::recycle_profiled`, probes the batched placement
//! engine the same way (`FARM_PLACE_ENGINE`-style multi-lane RUSH
//! prehash + memoized walk prefixes off vs on, whole trials in
//! interleaved chunks — the `placement_*` pair), sweeps the GF(2^8)
//! region kernels (scalar/SSSE3/AVX2 `mul_slice_xor` MB/s at 4 KiB /
//! 64 KiB / 1 MiB plus RS 8/10 encode/reconstruct MB/s — the
//! `gf_kernel` section), sweeps the placement kernels the same way
//! (raw `draw_hashes` rates plus `place_all_groups` throughput per
//! kernel — the `place_kernel` section), and merges the labelled
//! result set — stamped with host metadata and an optional `--notes`
//! annotation — into a JSON file (default `BENCH_PR10.json`).
//! Re-running with an existing label replaces that label's entry, so a
//! "before" run survives an "after" run of the same file.
//!
//! The workspace-recycling win is recorded as a before/after pair:
//! `FARM_WORKSPACE=0 report --label before` then `report --label after`
//! (each run's `workspace_reuse` field says which mode produced it).
//!
//! `--smoke` shrinks the trial counts ~20× for a CI smoke run (numbers
//! are noisy; the point is that the pipeline works end to end).

use farm_bench::json::Json;
use farm_bench::rss::peak_rss_bytes;
use farm_core::prelude::*;
use farm_core::workspace_reuse_enabled;
use farm_des::rng::derive_seed;
use farm_obs::{
    ConvergenceSpec, EventProfile, ObsOptions, SpanFormat, SpansSpec, StatusSpec, TimelineSpec,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

struct ConfigSpec {
    name: &'static str,
    cfg: SystemConfig,
    trials: u64,
}

fn tracked_configs(smoke: bool) -> Vec<ConfigSpec> {
    let base = |total: u64, group: u64| SystemConfig {
        total_user_bytes: total,
        group_user_bytes: group,
        ..SystemConfig::default()
    };
    let scale = if smoke { 20 } else { 1 };
    vec![
        ConfigSpec {
            name: "small_64TiB_10GiB",
            cfg: base(64 * TIB, 10 * GIB),
            trials: 1500 / scale,
        },
        ConfigSpec {
            name: "medium_256TiB_10GiB",
            cfg: base(256 * TIB, 10 * GIB),
            trials: 400 / scale,
        },
    ]
}

struct RunResult {
    name: &'static str,
    trials: u64,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    /// Fraction of the timed batch spent in per-trial setup (workspace
    /// obtain: recycle-or-construct, initial placement) vs event loop.
    setup_frac: f64,
    /// Trial setups per second of setup time (how fast `obtain` is).
    trial_setups_per_sec: f64,
    /// Events per second over event-loop time only (excludes setup).
    loop_events_per_sec: f64,
    /// Setup throughput with a recycled workspace vs fresh
    /// construction, measured in alternating chunks of the same
    /// invocation so machine drift hits both sides equally.
    recycled_setups_per_sec: f64,
    fresh_setups_per_sec: f64,
    parallel_trials_per_sec: f64,
    /// `None` when the platform has no peak-RSS source (recorded as
    /// JSON `null`, never a fake 0).
    peak_rss_bytes: Option<u64>,
    /// Vulnerability-window percentiles of the timed batch, seconds.
    vuln_p50: f64,
    vuln_p99: f64,
    vuln_max: f64,
    /// events/sec with event-loop profiling enabled (overhead probe).
    profiled_events_per_sec: f64,
    /// events/sec with telemetry fully off / fully on (timeline +
    /// flight recorder + post-mortems), interleaved in alternating
    /// chunks so CPU-frequency drift hits both sides equally.
    telemetry_off_events_per_sec: f64,
    telemetry_on_events_per_sec: f64,
    /// events/sec with the live campaign monitor fully off / fully on
    /// (status snapshots + /metrics exporter), interleaved chunks.
    monitor_off_events_per_sec: f64,
    monitor_on_events_per_sec: f64,
    /// events/sec with the convergence stream off / on (decimated
    /// JSONL checkpoints + reorder frontier), interleaved chunks.
    convergence_off_events_per_sec: f64,
    convergence_on_events_per_sec: f64,
    /// events/sec with the incremental timeline gauge aggregates
    /// (`LiveGauges`) off / on. The "on" side attaches a timeline whose
    /// interval lies past the horizon, so no sample is ever taken and
    /// the pair isolates the per-event maintenance cost alone.
    gauges_off_events_per_sec: f64,
    gauges_on_events_per_sec: f64,
    /// events/sec with recovery-span tracing off / on (`FARM_SPANS`
    /// JSONL export: per-repair span rows + bandwidth attribution),
    /// interleaved chunks.
    spans_off_events_per_sec: f64,
    spans_on_events_per_sec: f64,
    /// Whole-trial throughput (setup + event loop) with the batched
    /// placement engine disabled / enabled (`FARM_PLACE_ENGINE`),
    /// interleaved chunks. The engine only accelerates setup, so the
    /// events/sec gap is the trial-level win of the multi-lane prehash
    /// plus the memoized walk prefixes.
    placement_off_events_per_sec: f64,
    placement_on_events_per_sec: f64,
    placement_off_trials_per_sec: f64,
    placement_on_trials_per_sec: f64,
    /// Fraction of recycled-setup time spent in each phase, in
    /// [`Simulation::SETUP_PHASE_LABELS`] order (reset, disks,
    /// placement).
    setup_phase_fracs: Vec<(&'static str, f64)>,
}

/// Time a single-threaded batch with explicit observability options;
/// returns (summary, events/sec). Benchmarks pin their own options so
/// stray `FARM_*` variables cannot perturb the numbers.
fn timed_events_per_sec(
    spec: &ConfigSpec,
    trials: u64,
    obs: &ObsOptions,
) -> (farm_core::McSummary, f64) {
    let start = Instant::now();
    let (summary, _) = run_trials_observed(&spec.cfg, 2, trials, TrialMode::Full, 1, obs);
    let wall = start.elapsed().as_secs_f64();
    let events = summary.events.mean() * summary.trials() as f64;
    (summary, events / wall)
}

/// Probe the full-telemetry overhead: alternate off/on chunks of the
/// same trial budget and return (off events/sec, on events/sec). The
/// telemetry artifacts land in the temp dir and are removed afterwards.
fn telemetry_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let tmp = std::env::temp_dir();
    let tl = tmp.join(format!(
        "farm-bench-tl-{}-{}.csv",
        spec.name,
        std::process::id()
    ));
    let pm = tmp.join(format!(
        "farm-bench-pm-{}-{}.jsonl",
        spec.name,
        std::process::id()
    ));
    let obs_off = ObsOptions::off();
    let obs_on = ObsOptions {
        timeline: Some(TimelineSpec {
            path: tl.to_str().unwrap().to_string(),
            interval_secs: None,
        }),
        postmortem: Some(pm.to_str().unwrap().to_string()),
        ..ObsOptions::off()
    };

    const CHUNKS: u64 = 4;
    let per_chunk = (trials / CHUNKS).max(1);
    let (mut off_events, mut off_wall) = (0.0, 0.0);
    let (mut on_events, mut on_wall) = (0.0, 0.0);
    for _ in 0..CHUNKS {
        for (obs, events, wall) in [
            (&obs_off, &mut off_events, &mut off_wall),
            (&obs_on, &mut on_events, &mut on_wall),
        ] {
            let start = Instant::now();
            let (summary, _) =
                run_trials_observed(&spec.cfg, 2, per_chunk, TrialMode::Full, 1, obs);
            *wall += start.elapsed().as_secs_f64();
            *events += summary.events.mean() * summary.trials() as f64;
        }
    }
    std::fs::remove_file(&tl).ok();
    std::fs::remove_file(&pm).ok();
    (off_events / off_wall, on_events / on_wall)
}

/// Probe the live campaign monitor overhead: alternate off/on chunks
/// (status snapshots + /metrics exporter vs nothing) and return
/// (off events/sec, on events/sec). The monitor is process-global, so
/// once the first "on" chunk installs it the background status thread
/// runs for the rest of the process — that cost hits both sides of the
/// later chunks equally; the per-trial shard recording only hits "on".
fn monitor_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let status_path = std::env::temp_dir().join(format!(
        "farm-bench-status-{}-{}.json",
        spec.name,
        std::process::id()
    ));
    let obs_off = ObsOptions::off();
    let obs_on = ObsOptions {
        status: Some(StatusSpec {
            path: status_path.to_str().unwrap().to_string(),
            interval_secs: Some(0.5),
        }),
        http: Some("127.0.0.1:0".to_string()),
        ..ObsOptions::off()
    };

    const CHUNKS: u64 = 4;
    let per_chunk = (trials / CHUNKS).max(1);
    let (mut off_events, mut off_wall) = (0.0, 0.0);
    let (mut on_events, mut on_wall) = (0.0, 0.0);
    for _ in 0..CHUNKS {
        for (obs, events, wall) in [
            (&obs_off, &mut off_events, &mut off_wall),
            (&obs_on, &mut on_events, &mut on_wall),
        ] {
            let start = Instant::now();
            let (summary, _) =
                run_trials_observed(&spec.cfg, 2, per_chunk, TrialMode::Full, 1, obs);
            *wall += start.elapsed().as_secs_f64();
            *events += summary.events.mean() * summary.trials() as f64;
        }
    }
    std::fs::remove_file(&status_path).ok();
    (off_events / off_wall, on_events / on_wall)
}

/// Generic interleaved overhead probe: alternate chunks of the same
/// trial budget under `ObsOptions::off()` and `obs_on`, single-threaded,
/// and return (off events/sec, on events/sec). Interleaving cancels
/// CPU-frequency and load drift, the same design as the telemetry and
/// monitor pairs above.
fn interleaved_pair(spec: &ConfigSpec, trials: u64, obs_on: &ObsOptions) -> (f64, f64) {
    let obs_off = ObsOptions::off();
    const CHUNKS: u64 = 4;
    let per_chunk = (trials / CHUNKS).max(1);
    let (mut off_events, mut off_wall) = (0.0, 0.0);
    let (mut on_events, mut on_wall) = (0.0, 0.0);
    for _ in 0..CHUNKS {
        for (obs, events, wall) in [
            (&obs_off, &mut off_events, &mut off_wall),
            (obs_on, &mut on_events, &mut on_wall),
        ] {
            let start = Instant::now();
            let (summary, _) =
                run_trials_observed(&spec.cfg, 2, per_chunk, TrialMode::Full, 1, obs);
            *wall += start.elapsed().as_secs_f64();
            *events += summary.events.mean() * summary.trials() as f64;
        }
    }
    (off_events / off_wall, on_events / on_wall)
}

/// Probe the convergence-stream overhead: decimated JSONL checkpoints
/// plus the reorder frontier, against an interleaved off control.
fn convergence_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let path = std::env::temp_dir().join(format!(
        "farm-bench-conv-{}-{}.jsonl",
        spec.name,
        std::process::id()
    ));
    let obs_on = ObsOptions {
        convergence: Some(ConvergenceSpec {
            path: path.to_str().unwrap().to_string(),
            base_trials: None,
        }),
        ..ObsOptions::off()
    };
    let pair = interleaved_pair(spec, trials, &obs_on);
    std::fs::remove_file(&path).ok();
    pair
}

/// Isolate the incremental `LiveGauges` maintenance cost: attach a
/// timeline whose sample interval lies past the simulation horizon, so
/// the recorder never takes a sample and the only "on" cost left is
/// the per-event gauge bookkeeping in the handlers.
fn gauges_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let path = std::env::temp_dir().join(format!(
        "farm-bench-gauges-{}-{}.csv",
        spec.name,
        std::process::id()
    ));
    let obs_on = ObsOptions {
        timeline: Some(TimelineSpec {
            path: path.to_str().unwrap().to_string(),
            // Far beyond any simulated horizon: zero samples are taken,
            // but the live gauge aggregates are still maintained.
            interval_secs: Some(1e18),
        }),
        ..ObsOptions::off()
    };
    let pair = interleaved_pair(spec, trials, &obs_on);
    std::fs::remove_file(&path).ok();
    pair
}

/// Probe the recovery-span tracing overhead: per-repair span recording
/// plus the JSONL artifact export, against an interleaved off control.
fn spans_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let path = std::env::temp_dir().join(format!(
        "farm-bench-spans-{}-{}.jsonl",
        spec.name,
        std::process::id()
    ));
    let obs_on = ObsOptions {
        spans: Some(SpansSpec {
            path: path.to_str().unwrap().to_string(),
            format: SpanFormat::Jsonl,
        }),
        ..ObsOptions::off()
    };
    let pair = interleaved_pair(spec, trials, &obs_on);
    std::fs::remove_file(&path).ok();
    pair
}

/// Batched-placement-engine probe: whole trials (recycled setup +
/// event loop) with the engine off vs on, in alternating chunks with
/// one workspace per side so recycling state is comparable. Returns
/// (off events/sec, on events/sec, off trials/sec, on trials/sec).
/// Trial *results* are bit-identical either way (pinned by
/// `tests/placement_kernel_identity.rs`); only the wall time moves.
fn placement_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64, f64, f64) {
    use farm_placement::kernel;
    let prepared = Arc::new(PreparedConfig::new(spec.cfg.clone()));
    const CHUNKS: u64 = 4;
    let per_chunk = (trials / CHUNKS).max(1);
    let startup = kernel::engine_enabled();
    let mut ws_off = TrialWorkspace::new();
    let mut ws_on = TrialWorkspace::new();
    let (mut off_events, mut off_wall, mut off_n) = (0.0f64, 0.0f64, 0u64);
    let (mut on_events, mut on_wall, mut on_n) = (0.0f64, 0.0f64, 0u64);
    for chunk in 0..CHUNKS {
        for (engine, ws, events, wall, n) in [
            (
                false,
                &mut ws_off,
                &mut off_events,
                &mut off_wall,
                &mut off_n,
            ),
            (true, &mut ws_on, &mut on_events, &mut on_wall, &mut on_n),
        ] {
            kernel::set_engine_enabled(engine);
            for t in 0..per_chunk {
                let seed = derive_seed(6, chunk * per_chunk + t);
                let start = Instant::now();
                let m = ws.obtain(&prepared, seed).run();
                *wall += start.elapsed().as_secs_f64();
                *events += m.events_processed as f64;
                *n += 1;
            }
        }
    }
    kernel::set_engine_enabled(startup);
    (
        off_events / off_wall,
        on_events / on_wall,
        off_n as f64 / off_wall,
        on_n as f64 / on_wall,
    )
}

/// Workspace-recycling probe: alternate chunks of trials whose setup
/// comes from a recycled workspace vs fresh construction, timing only
/// the setup (`obtain`) portion. The full event loop still runs between
/// obtains so allocator state stays representative, and interleaving
/// cancels CPU-frequency and load drift.
fn reuse_pair(spec: &ConfigSpec, trials: u64) -> (f64, f64) {
    let prepared = Arc::new(PreparedConfig::new(spec.cfg.clone()));
    const CHUNKS: u64 = 4;
    let per_chunk = (trials / CHUNKS).max(1);
    let (mut rec_secs, mut fresh_secs) = (0.0f64, 0.0f64);
    let (mut rec_n, mut fresh_n) = (0u64, 0u64);
    for _ in 0..CHUNKS {
        for (reuse, secs, n) in [
            (true, &mut rec_secs, &mut rec_n),
            (false, &mut fresh_secs, &mut fresh_n),
        ] {
            let mut ws = TrialWorkspace::with_reuse(reuse);
            let _ = ws.obtain(&prepared, derive_seed(3, 0)).run();
            for t in 0..per_chunk {
                let s0 = Instant::now();
                let sim = ws.obtain(&prepared, derive_seed(3, t + 1));
                *secs += s0.elapsed().as_secs_f64();
                *n += 1;
                let _ = sim.run();
            }
        }
    }
    (rec_n as f64 / rec_secs, fresh_n as f64 / fresh_secs)
}

fn measure(spec: &ConfigSpec) -> RunResult {
    let obs_off = ObsOptions::off();
    let obs_profiled = ObsOptions {
        profile: true,
        ..ObsOptions::off()
    };

    // Warm-up: fault in code paths and the allocator before timing.
    run_trials_observed(&spec.cfg, 1, 1, TrialMode::Full, 1, &obs_off);

    // Single-threaded timed run: the per-core throughput number that
    // optimizations must move. Driven through the same per-worker
    // workspace the Monte-Carlo drivers use (honouring
    // `FARM_WORKSPACE`), with per-trial setup and the event loop timed
    // separately — `Simulation::new` used to dominate the trial, so the
    // split is tracked explicitly.
    let prepared = Arc::new(PreparedConfig::new(spec.cfg.clone()));
    let mut ws = TrialWorkspace::new();
    let mut summary = McSummary::new();
    let (mut setup_secs, mut loop_secs) = (0.0f64, 0.0f64);
    for t in 0..spec.trials {
        let seed = derive_seed(2, t);
        let s0 = Instant::now();
        let sim = ws.obtain(&prepared, seed);
        setup_secs += s0.elapsed().as_secs_f64();
        let s1 = Instant::now();
        let m = sim.run();
        loop_secs += s1.elapsed().as_secs_f64();
        summary.push(&m);
    }
    let wall = setup_secs + loop_secs;
    let events = (summary.events.mean() * summary.trials() as f64).round() as u64;

    // Overhead probe: the same batch with the event-loop profiler on.
    // The contract is "zero when off, cheap when on"; tracking the
    // profiled number catches regressions in the instrumented path too.
    let probe_trials = (spec.trials / 4).max(1);
    let (_, profiled_eps) = timed_events_per_sec(spec, probe_trials, &obs_profiled);

    // Telemetry probe: the timeline sampler + flight recorder, measured
    // against an interleaved telemetry-off control of the same size.
    let (telemetry_off_eps, telemetry_on_eps) = telemetry_pair(spec, probe_trials);

    // Campaign-monitor probe: status snapshots + /metrics exporter,
    // same interleaved design.
    let (monitor_off_eps, monitor_on_eps) = monitor_pair(spec, probe_trials);

    // Convergence-stream probe: decimated JSONL checkpoints + reorder
    // frontier vs off, interleaved.
    let (convergence_off_eps, convergence_on_eps) = convergence_pair(spec, probe_trials);

    // LiveGauges probe: incremental gauge maintenance with sampling
    // suppressed vs off, interleaved.
    let (gauges_off_eps, gauges_on_eps) = gauges_pair(spec, probe_trials);

    // Recovery-span probe: per-repair span recording + JSONL export vs
    // off, interleaved.
    let (spans_off_eps, spans_on_eps) = spans_pair(spec, probe_trials);

    // Placement-engine probe: whole trials with the batched engine off
    // vs on, interleaved.
    let (placement_off_eps, placement_on_eps, placement_off_tps, placement_on_tps) =
        placement_pair(spec, probe_trials);

    // Workspace-reuse probe: recycled vs fresh setup, interleaved.
    let (recycled_sps, fresh_sps) = reuse_pair(spec, probe_trials);

    // Setup-phase breakdown: recycle the same simulation repeatedly
    // with each phase timed, the full event loop running in between so
    // the layout is dirty the way real trials leave it.
    let setup_phase_fracs = setup_phase_breakdown(&prepared, probe_trials);

    // Parallel throughput at the default thread count.
    let threads = default_threads();
    let pstart = Instant::now();
    run_trials_observed(
        &spec.cfg,
        2,
        spec.trials,
        TrialMode::Full,
        threads,
        &obs_off,
    );
    let pwall = pstart.elapsed().as_secs_f64();

    RunResult {
        name: spec.name,
        trials: spec.trials,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        setup_frac: setup_secs / wall,
        trial_setups_per_sec: spec.trials as f64 / setup_secs,
        loop_events_per_sec: events as f64 / loop_secs,
        recycled_setups_per_sec: recycled_sps,
        fresh_setups_per_sec: fresh_sps,
        parallel_trials_per_sec: spec.trials as f64 / pwall,
        peak_rss_bytes: peak_rss_bytes(),
        vuln_p50: summary.vulnerability.p50(),
        vuln_p99: summary.vulnerability.p99(),
        vuln_max: summary.vulnerability.max(),
        profiled_events_per_sec: profiled_eps,
        telemetry_off_events_per_sec: telemetry_off_eps,
        telemetry_on_events_per_sec: telemetry_on_eps,
        monitor_off_events_per_sec: monitor_off_eps,
        monitor_on_events_per_sec: monitor_on_eps,
        convergence_off_events_per_sec: convergence_off_eps,
        convergence_on_events_per_sec: convergence_on_eps,
        gauges_off_events_per_sec: gauges_off_eps,
        gauges_on_events_per_sec: gauges_on_eps,
        spans_off_events_per_sec: spans_off_eps,
        spans_on_events_per_sec: spans_on_eps,
        placement_off_events_per_sec: placement_off_eps,
        placement_on_events_per_sec: placement_on_eps,
        placement_off_trials_per_sec: placement_off_tps,
        placement_on_trials_per_sec: placement_on_tps,
        setup_phase_fracs,
    }
}

/// Where does recycled setup time go? Runs `trials` recycles of one
/// simulation with `Simulation::recycle_profiled`, the event loop
/// executing between recycles, and returns each phase's fraction of
/// total setup time.
fn setup_phase_breakdown(prepared: &Arc<PreparedConfig>, trials: u64) -> Vec<(&'static str, f64)> {
    let mut sim = Simulation::from_shared(Arc::clone(prepared), derive_seed(4, 0));
    let _ = sim.run();
    let mut prof = EventProfile::new(Simulation::SETUP_PHASE_LABELS);
    for t in 0..trials {
        sim.recycle_profiled(prepared, derive_seed(4, t + 1), &mut prof);
        let _ = sim.run();
    }
    let total = prof.total_nanos().max(1) as f64;
    Simulation::SETUP_PHASE_LABELS
        .iter()
        .enumerate()
        .map(|(i, &label)| (label, prof.nanos(i) as f64 / total))
        .collect()
}

/// GF(2^8) kernel sweep: `mul_slice_xor` MB/s per available kernel at
/// three region sizes, plus RS 8/10 encode/reconstruct MB/s at 64 KiB,
/// and the headline SIMD-vs-scalar speedup on 64 KiB regions.
fn gf_kernel_section() -> Json {
    use farm_erasure::gf256::kernel::{self, Kernel};

    fn mbps(bytes_per_iter: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed().as_secs_f64() < 0.25 {
            f();
            iters += 1;
        }
        iters as f64 * bytes_per_iter as f64 / start.elapsed().as_secs_f64() / 1e6
    }

    let startup = kernel::active();
    let sizes: [(usize, &str); 3] = [
        (4 << 10, "mul_xor_4KiB_mbps"),
        (64 << 10, "mul_xor_64KiB_mbps"),
        (1 << 20, "mul_xor_1MiB_mbps"),
    ];
    let scheme = Scheme::new(8, 10);
    let m = scheme.m as usize;
    let k_tol = scheme.fault_tolerance() as usize;
    let codec = scheme.codec();
    let region = 64usize << 10;
    let data: Vec<Vec<u8>> = (0..m)
        .map(|i| {
            (0..region)
                .map(|j| ((i * 31 + j * 7) & 0xff) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let full: Vec<Vec<u8>> = data.iter().cloned().chain(codec.encode(&refs)).collect();

    let mut kernels = Vec::new();
    let (mut scalar_64k, mut best_64k) = (0.0f64, 0.0f64);
    for k in Kernel::ALL {
        let mut entry = BTreeMap::from([
            ("kernel".into(), Json::str(k.name())),
            ("supported".into(), Json::Bool(k.supported())),
        ]);
        if k.supported() {
            for (size, field) in sizes {
                let src = vec![0xABu8; size];
                let mut dst = vec![0x11u8; size];
                let rate = mbps(size, || kernel::mul_slice_xor(k, 0x57, &src, &mut dst));
                if size == 64 << 10 {
                    if k == Kernel::Scalar {
                        scalar_64k = rate;
                    }
                    best_64k = best_64k.max(rate);
                }
                entry.insert(field.into(), Json::num(rate.round()));
            }
            kernel::set_active(k);
            let enc = mbps(m * region, || {
                std::hint::black_box(codec.encode(std::hint::black_box(&refs)));
            });
            let rec = mbps(m * region, || {
                let mut working: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for slot in working.iter_mut().take(k_tol) {
                    *slot = None;
                }
                assert!(codec.reconstruct(&mut working));
                std::hint::black_box(working);
            });
            entry.insert("encode_64KiB_mbps".into(), Json::num(enc.round()));
            entry.insert("reconstruct_64KiB_mbps".into(), Json::num(rec.round()));
        }
        kernels.push(Json::Obj(entry));
    }
    kernel::set_active(startup);

    Json::Obj(BTreeMap::from([
        ("active".into(), Json::str(startup.name())),
        (
            "simd_speedup_64KiB".into(),
            Json::num((best_64k / scalar_64k.max(1e-9) * 1e2).round() / 1e2),
        ),
        ("kernels".into(), Json::Arr(kernels)),
    ]))
}

/// Placement-kernel sweep: raw batched `draw_hashes` rates per
/// available kernel, plus the real `place_all_groups` throughput
/// (initial placement of the small tracked config, timed through
/// `Simulation::recycle_profiled`'s placement phase) under each kernel
/// and with the engine off — the sequential-walk baseline the speedup
/// is quoted against.
fn place_kernel_section(smoke: bool) -> Json {
    use farm_placement::kernel::{self, Kernel};

    let cfg = SystemConfig {
        total_user_bytes: 64 * TIB,
        group_user_bytes: 10 * GIB,
        ..SystemConfig::default()
    };
    let prepared = Arc::new(PreparedConfig::new(cfg));
    let recycles = if smoke { 4u64 } else { 48 };
    let mut sim = Simulation::from_shared(Arc::clone(&prepared), derive_seed(8, 0));
    let n_groups = sim.layout().n_groups() as f64;

    // groups/sec through place_all_groups alone (placement-phase nanos
    // of profiled recycles; reset and disk installation excluded).
    let mut place_rate = |engine: bool| -> f64 {
        let prev = kernel::set_engine_enabled(engine);
        let mut prof = EventProfile::new(Simulation::SETUP_PHASE_LABELS);
        for t in 0..recycles {
            sim.recycle_profiled(&prepared, derive_seed(8, t + 1), &mut prof);
        }
        kernel::set_engine_enabled(prev);
        let placement_secs = (prof.nanos(2).max(1)) as f64 / 1e9;
        recycles as f64 * n_groups / placement_secs
    };

    let startup = kernel::active();
    let seq_rate = place_rate(false);
    let mut kernels = Vec::new();
    let mut active_rate = seq_rate;
    for k in Kernel::ALL {
        let mut entry = BTreeMap::from([
            ("kernel".into(), Json::str(k.name())),
            ("supported".into(), Json::Bool(k.supported())),
        ]);
        if k.supported() {
            kernel::set_active(k);
            // Raw multi-lane hash rate, independent of the simulator.
            let gkeys: [u64; kernel::LANES] =
                std::array::from_fn(|l| 0x9E37_79B9u64.wrapping_mul(l as u64 + 1));
            let n_idx = 16usize;
            let mut out = vec![0u64; n_idx * kernel::LANES];
            k.run(&gkeys, n_idx, &mut out);
            let start = Instant::now();
            let mut iters = 0u64;
            while start.elapsed().as_secs_f64() < 0.1 {
                for _ in 0..256 {
                    k.run(&gkeys, n_idx, &mut out);
                }
                iters += 256;
            }
            std::hint::black_box(&out);
            let mhashes =
                iters as f64 * (n_idx * kernel::LANES) as f64 / start.elapsed().as_secs_f64() / 1e6;
            let groups = place_rate(true);
            if k == startup {
                active_rate = groups;
            }
            entry.insert("draw_mhashes_per_sec".into(), Json::num(mhashes.round()));
            entry.insert(
                "place_all_groups_kgroups_per_sec".into(),
                Json::num((groups / 1e3 * 1e1).round() / 1e1),
            );
        }
        kernels.push(Json::Obj(entry));
    }
    kernel::set_active(startup);

    Json::Obj(BTreeMap::from([
        ("active".into(), Json::str(startup.name())),
        (
            "engine_enabled".into(),
            Json::Bool(kernel::engine_enabled()),
        ),
        (
            "place_all_groups_seq_kgroups_per_sec".into(),
            Json::num((seq_rate / 1e3 * 1e1).round() / 1e1),
        ),
        (
            "engine_speedup".into(),
            Json::num((active_rate / seq_rate.max(1e-9) * 1e2).round() / 1e2),
        ),
        ("kernels".into(), Json::Arr(kernels)),
    ]))
}

fn result_to_json(r: &RunResult) -> Json {
    Json::Obj(BTreeMap::from([
        ("config".into(), Json::str(r.name)),
        ("trials".into(), Json::num(r.trials as f64)),
        ("events".into(), Json::num(r.events as f64)),
        (
            "wall_secs".into(),
            Json::num((r.wall_secs * 1e3).round() / 1e3),
        ),
        ("events_per_sec".into(), Json::num(r.events_per_sec.round())),
        (
            "setup_frac".into(),
            Json::num((r.setup_frac * 1e4).round() / 1e4),
        ),
        (
            "trial_setups_per_sec".into(),
            Json::num((r.trial_setups_per_sec * 1e1).round() / 1e1),
        ),
        (
            "loop_events_per_sec".into(),
            Json::num(r.loop_events_per_sec.round()),
        ),
        (
            "recycled_setups_per_sec".into(),
            Json::num((r.recycled_setups_per_sec * 1e1).round() / 1e1),
        ),
        (
            "fresh_setups_per_sec".into(),
            Json::num((r.fresh_setups_per_sec * 1e1).round() / 1e1),
        ),
        (
            "parallel_trials_per_sec".into(),
            Json::num((r.parallel_trials_per_sec * 1e3).round() / 1e3),
        ),
        (
            "peak_rss_bytes".into(),
            match r.peak_rss_bytes {
                Some(b) => Json::num(b as f64),
                None => Json::Null,
            },
        ),
        ("vuln_p50_secs".into(), Json::num(r.vuln_p50.round())),
        ("vuln_p99_secs".into(), Json::num(r.vuln_p99.round())),
        ("vuln_max_secs".into(), Json::num(r.vuln_max.round())),
        (
            "profiled_events_per_sec".into(),
            Json::num(r.profiled_events_per_sec.round()),
        ),
        (
            "telemetry_off_events_per_sec".into(),
            Json::num(r.telemetry_off_events_per_sec.round()),
        ),
        (
            "telemetry_on_events_per_sec".into(),
            Json::num(r.telemetry_on_events_per_sec.round()),
        ),
        (
            "monitor_off_events_per_sec".into(),
            Json::num(r.monitor_off_events_per_sec.round()),
        ),
        (
            "monitor_on_events_per_sec".into(),
            Json::num(r.monitor_on_events_per_sec.round()),
        ),
        (
            "convergence_off_events_per_sec".into(),
            Json::num(r.convergence_off_events_per_sec.round()),
        ),
        (
            "convergence_on_events_per_sec".into(),
            Json::num(r.convergence_on_events_per_sec.round()),
        ),
        (
            "gauges_off_events_per_sec".into(),
            Json::num(r.gauges_off_events_per_sec.round()),
        ),
        (
            "gauges_on_events_per_sec".into(),
            Json::num(r.gauges_on_events_per_sec.round()),
        ),
        (
            "spans_off_events_per_sec".into(),
            Json::num(r.spans_off_events_per_sec.round()),
        ),
        (
            "spans_on_events_per_sec".into(),
            Json::num(r.spans_on_events_per_sec.round()),
        ),
        (
            "placement_off_events_per_sec".into(),
            Json::num(r.placement_off_events_per_sec.round()),
        ),
        (
            "placement_on_events_per_sec".into(),
            Json::num(r.placement_on_events_per_sec.round()),
        ),
        (
            "placement_off_trials_per_sec".into(),
            Json::num((r.placement_off_trials_per_sec * 1e3).round() / 1e3),
        ),
        (
            "placement_on_trials_per_sec".into(),
            Json::num((r.placement_on_trials_per_sec * 1e3).round() / 1e3),
        ),
        (
            "setup_phases".into(),
            Json::Obj(
                r.setup_phase_fracs
                    .iter()
                    .map(|&(label, frac)| {
                        (label.to_string(), Json::num((frac * 1e4).round() / 1e4))
                    })
                    .collect(),
            ),
        ),
    ]))
}

/// Fleet-scaling sweep: wall-clock the fleet coordinator (the
/// `fleet` binary from `farm-experiments`, expected next to this one
/// in the target dir) over the same small campaign at 1, 2 and 4
/// worker processes. The merged result is bit-identical by
/// construction (pinned by `tests/fleet.rs`); this probe records only
/// the throughput curve. When the binary is absent the section is a
/// `points: null` stub with a note, so report generation never fails
/// on a partial build.
fn fleet_scaling_section(smoke: bool) -> Json {
    use std::process::{Command, Stdio};

    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("fleet")))
        .filter(|b| b.exists());
    let Some(bin) = bin else {
        return Json::Obj(BTreeMap::from([
            ("points".into(), Json::Null),
            (
                "note".into(),
                Json::str(
                    "fleet binary not found next to report; build with \
                     `cargo build --release -p farm-experiments --bin fleet`",
                ),
            ),
        ]));
    };
    let trials: u64 = if smoke { 16 } else { 96 };
    let mut points = Vec::new();
    for workers in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!(
            "farm-bench-fleet-{}-w{workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        let status = Command::new(&bin)
            .args(["--workers", &workers.to_string()])
            .args(["--no-dashboard", "--no-worker-http"])
            .args(["--trials", &trials.to_string()])
            .args(["--seed", "7", "--scale", "0.015625", "--threads", "1"])
            .arg("--fleet")
            .arg(&dir)
            .stdout(Stdio::null())
            .status();
        let wall = t0.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        if !status.map(|s| s.success()).unwrap_or(false) {
            return Json::Obj(BTreeMap::from([
                ("points".into(), Json::Null),
                (
                    "note".into(),
                    Json::str(format!("fleet run with {workers} worker(s) failed")),
                ),
            ]));
        }
        points.push(Json::Obj(BTreeMap::from([
            ("workers".into(), Json::num(workers as f64)),
            (
                "trials_per_sec".into(),
                Json::num((trials as f64 / wall.max(1e-9) * 1e2).round() / 1e2),
            ),
            ("wall_secs".into(), Json::num((wall * 1e3).round() / 1e3)),
        ])));
    }
    Json::Obj(BTreeMap::from([
        ("trials".into(), Json::num(trials as f64)),
        ("points".into(), Json::Arr(points)),
    ]))
}

/// Host/provenance metadata stamped into each labelled run so that
/// trajectory points from different machines or toolchains are
/// comparable at a glance.
fn host_metadata() -> Json {
    let logical_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Json::Obj(BTreeMap::from([
        ("logical_cpus".into(), Json::num(logical_cpus as f64)),
        ("farm_threads".into(), Json::num(default_threads() as f64)),
        ("rustc".into(), Json::str(env!("FARM_RUSTC_VERSION"))),
    ]))
}

/// Replace-or-append this label's entry in the report document.
fn merge_into(
    doc: Json,
    label: &str,
    notes: &str,
    gf_kernel: Json,
    place_kernel: Json,
    fleet_scaling: Json,
    results: &[RunResult],
) -> Json {
    let mut runs: Vec<Json> = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .map(|r| r.to_vec())
        .unwrap_or_default();
    runs.retain(|r| r.get("label").and_then(|l| l.as_str()) != Some(label));
    runs.push(Json::Obj(BTreeMap::from([
        ("label".into(), Json::str(label)),
        ("notes".into(), Json::str(notes)),
        ("host".into(), host_metadata()),
        (
            "workspace_reuse".into(),
            Json::Bool(workspace_reuse_enabled()),
        ),
        ("gf_kernel".into(), gf_kernel),
        ("place_kernel".into(), place_kernel),
        ("fleet_scaling".into(), fleet_scaling),
        (
            "configs".into(),
            Json::Arr(results.iter().map(result_to_json).collect()),
        ),
    ])));
    Json::Obj(BTreeMap::from([
        ("benchmark".into(), Json::str("farm trial throughput")),
        ("runs".into(), Json::Arr(runs)),
    ]))
}

fn main() {
    let mut label = String::from("run");
    let mut out = String::from("BENCH_PR10.json");
    let mut notes = String::new();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = args.next().expect("--out needs a value"),
            "--notes" => notes = args.next().expect("--notes needs a value"),
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("usage: report [--label NAME] [--out FILE.json] [--notes TEXT] [--smoke]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }

    eprintln!("sweeping GF(2^8) kernels...");
    let gf_kernel = gf_kernel_section();
    if let Some(speedup) = gf_kernel.get("simd_speedup_64KiB").and_then(|s| s.as_f64()) {
        println!("gf_kernel: best SIMD mul_slice_xor is {speedup:.2}x scalar on 64 KiB regions");
    }

    eprintln!("sweeping placement kernels...");
    let place_kernel = place_kernel_section(smoke);
    if let Some(speedup) = place_kernel.get("engine_speedup").and_then(|s| s.as_f64()) {
        println!("place_kernel: batched place_all_groups is {speedup:.2}x the sequential walk");
    }

    eprintln!("sweeping fleet scaling...");
    let fleet_scaling = fleet_scaling_section(smoke);
    match fleet_scaling.get("points").and_then(|p| p.as_arr()) {
        Some(points) => println!("fleet_scaling: {} worker-count point(s)", points.len()),
        None => {
            if let Some(note) = fleet_scaling.get("note").and_then(|n| n.as_str()) {
                eprintln!("fleet_scaling: skipped: {note}");
            }
        }
    }

    let mut results = Vec::new();
    for spec in tracked_configs(smoke) {
        eprintln!("measuring {} ({} trials)...", spec.name, spec.trials);
        let r = measure(&spec);
        let rss = match r.peak_rss_bytes {
            Some(b) => format!("{} MiB", b >> 20),
            None => "unknown".to_string(),
        };
        println!(
            "{:<22} {:>9.1} events/sec  {:>6.3} trials/sec ({} threads)  peak RSS {rss}",
            r.name,
            r.events_per_sec,
            r.parallel_trials_per_sec,
            default_threads(),
        );
        println!(
            "{:<22} setup {:.1}% of wall  {:.1} setups/sec  loop {:.1} events/sec",
            "",
            100.0 * r.setup_frac,
            r.trial_setups_per_sec,
            r.loop_events_per_sec,
        );
        let phases = r
            .setup_phase_fracs
            .iter()
            .map(|(label, frac)| format!("{label} {:.1}%", 100.0 * frac))
            .collect::<Vec<_>>()
            .join("  ");
        println!("{:<22} setup phases: {phases}", "");
        println!(
            "{:<22} setup recycled {:.1} vs fresh {:.1} setups/sec ({:+.1}%)",
            "",
            r.recycled_setups_per_sec,
            r.fresh_setups_per_sec,
            100.0 * (r.recycled_setups_per_sec / r.fresh_setups_per_sec - 1.0),
        );
        println!(
            "{:<22} vuln window p50 {:.0}s p99 {:.0}s max {:.0}s  profiled {:.1} events/sec ({:+.1}%)",
            "",
            r.vuln_p50,
            r.vuln_p99,
            r.vuln_max,
            r.profiled_events_per_sec,
            100.0 * (r.profiled_events_per_sec / r.events_per_sec - 1.0),
        );
        println!(
            "{:<22} telemetry off {:.1} on {:.1} events/sec ({:+.1}%)",
            "",
            r.telemetry_off_events_per_sec,
            r.telemetry_on_events_per_sec,
            100.0 * (r.telemetry_on_events_per_sec / r.telemetry_off_events_per_sec - 1.0),
        );
        println!(
            "{:<22} monitor off {:.1} on {:.1} events/sec ({:+.1}%)",
            "",
            r.monitor_off_events_per_sec,
            r.monitor_on_events_per_sec,
            100.0 * (r.monitor_on_events_per_sec / r.monitor_off_events_per_sec - 1.0),
        );
        println!(
            "{:<22} convergence off {:.1} on {:.1} events/sec ({:+.1}%)",
            "",
            r.convergence_off_events_per_sec,
            r.convergence_on_events_per_sec,
            100.0 * (r.convergence_on_events_per_sec / r.convergence_off_events_per_sec - 1.0),
        );
        println!(
            "{:<22} gauges off {:.1} on {:.1} events/sec ({:+.1}%)",
            "",
            r.gauges_off_events_per_sec,
            r.gauges_on_events_per_sec,
            100.0 * (r.gauges_on_events_per_sec / r.gauges_off_events_per_sec - 1.0),
        );
        println!(
            "{:<22} spans off {:.1} on {:.1} events/sec ({:+.1}%)",
            "",
            r.spans_off_events_per_sec,
            r.spans_on_events_per_sec,
            100.0 * (r.spans_on_events_per_sec / r.spans_off_events_per_sec - 1.0),
        );
        println!(
            "{:<22} placement engine off {:.3} on {:.3} trials/sec ({:+.1}%)",
            "",
            r.placement_off_trials_per_sec,
            r.placement_on_trials_per_sec,
            100.0 * (r.placement_on_trials_per_sec / r.placement_off_trials_per_sec - 1.0),
        );
        results.push(r);
    }

    let existing = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .unwrap_or(Json::Null);
    let doc = merge_into(
        existing,
        &label,
        &notes,
        gf_kernel,
        place_kernel,
        fleet_scaling,
        &results,
    );
    std::fs::write(&out, doc.pretty()).expect("write report");
    eprintln!("wrote label {label:?} to {out}");
}
