//! A deliberately small JSON value type with a parser and printer.
//!
//! The benchmark report merges runs into `BENCH_PR1.json` across
//! invocations ("before" vs "after" an optimization), which needs
//! read-modify-write of a JSON document. The workspace's serde is an
//! offline no-op stand-in, so this module carries the ~150 lines of
//! recursive-descent JSON that the report actually needs. It supports
//! the full JSON grammar except `\u` escapes beyond the BMP surrogate
//! pairs it never emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Objects use a BTreeMap so output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers print without a fraction; everything else with
                // enough digits to round-trip.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"runs":[{"label":"before","eps":12345.5,"ok":true},{"label":"after","eps":2.5e4,"note":null}]}"#;
        let v = Json::parse(src).unwrap();
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("before"));
        assert_eq!(runs[1].get("eps").unwrap().as_f64(), Some(25_000.0));
        // pretty output re-parses to the same value
        let again = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te");
        let printed = v.pretty();
        assert_eq!(Json::parse(printed.trim()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        let v = Json::Obj(
            [
                ("a".to_string(), Json::num(3.0)),
                ("b".to_string(), Json::num(3.25)),
            ]
            .into(),
        );
        let s = v.pretty();
        assert!(s.contains("\"a\": 3,"), "{s}");
        assert!(s.contains("\"b\": 3.25"), "{s}");
    }
}
