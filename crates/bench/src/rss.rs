//! Peak resident-set-size of the current process.

/// Peak RSS (VmHWM) in bytes, from `/proc/self/status`. Returns 0 on
/// platforms without procfs — the report records it as "unknown".
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_nonzero_on_linux() {
        assert!(super::peak_rss_bytes() > 0);
    }
}
