//! Peak resident-set-size of the current process.
//!
//! The reading itself lives in [`farm_obs::rss`] (the live campaign
//! monitor stamps it into every status snapshot); this module re-exports
//! it for the benchmark report. The contract on unsupported platforms is
//! explicit absence: `None` plus a once-per-process diagnostic — never a
//! silent 0 that would look like a real (impossible) measurement in the
//! tracked trajectory. The JSON report records it as `null`.

pub use farm_obs::rss::peak_rss_bytes;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_present_and_nonzero_on_linux() {
        let rss = peak_rss_bytes().expect("procfs available on linux");
        assert!(rss > 0);
        // The success path must not have burned the warn-once key.
        assert!(!farm_obs::diag::warned(farm_obs::rss::RSS_WARN_KEY));
    }
}
