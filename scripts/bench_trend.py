#!/usr/bin/env python3
"""Merge the tracked BENCH_PR*.json reports into one perf trajectory.

Usage:
    bench_trend.py [--dir REPO] [--md OUT.md] [--csv OUT.csv]

Each PR's benchmark report (`crates/bench/src/bin/report.rs`) is a
snapshot of trial throughput at that point in the repo's history; this
script lines them up into a single per-config table — one row per
(report, run label) — so the trajectory is readable at a glance and
plottable from the CSV. Reports grew columns over time (setup split,
telemetry and monitor overhead probes), so missing fields render as
empty cells rather than failing. Stdlib only; used by the `bench-trend`
CI job, which uploads the outputs as artifacts.
"""

import csv
import glob
import io
import json
import os
import re
import sys

# (column header, config-entry key, format)
COLUMNS = [
    ("events/sec", "events_per_sec", "{:,.0f}"),
    ("loop events/sec", "loop_events_per_sec", "{:,.0f}"),
    ("parallel trials/sec", "parallel_trials_per_sec", "{:,.1f}"),
    ("setup frac", "setup_frac", "{:.3f}"),
    ("peak RSS MiB", "peak_rss_bytes", "rss"),
    ("telemetry off/on", ("telemetry_off_events_per_sec",
                          "telemetry_on_events_per_sec"), "pair"),
    ("monitor off/on", ("monitor_off_events_per_sec",
                        "monitor_on_events_per_sec"), "pair"),
    ("convergence off/on", ("convergence_off_events_per_sec",
                            "convergence_on_events_per_sec"), "pair"),
    ("gauges off/on", ("gauges_off_events_per_sec",
                       "gauges_on_events_per_sec"), "pair"),
    ("spans off/on", ("spans_off_events_per_sec",
                      "spans_on_events_per_sec"), "pair"),
    ("placement off/on", ("placement_off_trials_per_sec",
                          "placement_on_trials_per_sec"), "pair3"),
    ("setup phases", "setup_phases", "phases"),
    # Derived: fraction of *total* trial wall spent in place_all_groups
    # (setup_frac x the placement share of setup) — the number the
    # batched placement engine exists to shrink.
    ("placement wall frac", None, "placewall"),
]

# (column header, kernel-entry key) for the per-kernel GF(2^8) sweep
# (PR 6 onwards; reports without a `gf_kernel` run section skip it).
KERNEL_COLUMNS = [
    ("mul_xor 4 KiB MB/s", "mul_xor_4KiB_mbps"),
    ("mul_xor 64 KiB MB/s", "mul_xor_64KiB_mbps"),
    ("mul_xor 1 MiB MB/s", "mul_xor_1MiB_mbps"),
    ("encode 64 KiB MB/s", "encode_64KiB_mbps"),
    ("reconstruct 64 KiB MB/s", "reconstruct_64KiB_mbps"),
]

# (column header, kernel-entry key) for the per-kernel placement sweep
# (PR 9 onwards; reports without a `place_kernel` run section skip it).
PLACE_KERNEL_COLUMNS = [
    ("draw Mhash/s", "draw_mhashes_per_sec"),
    ("place_all_groups kgroups/s", "place_all_groups_kgroups_per_sec"),
]


# (column header, point key) for the fleet-scaling sweep (PR 10
# onwards; reports without a `fleet_scaling` run section skip it).
FLEET_COLUMNS = [
    ("trials/sec", "trials_per_sec"),
    ("wall secs", "wall_secs"),
]


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)\.json$", path)
    return int(m.group(1)) if m else -1


def _num(v):
    return v if isinstance(v, (int, float)) and not isinstance(v, bool) else None


def fmt(entry, key, spec):
    if spec in ("pair", "pair3"):
        off, on = (_num(entry.get(k)) for k in key)
        if off is None or on is None or off == 0:
            return ""
        num = "{:,.3f}" if spec == "pair3" else "{:,.0f}"
        return (num + " / " + num + " ({:+.1f}%)").format(
            off, on, 100 * (on / off - 1))
    if spec == "placewall":
        sf = _num(entry.get("setup_frac"))
        phases = entry.get("setup_phases")
        share = _num(phases.get("placement")) if isinstance(phases, dict) else None
        if sf is None or share is None:
            return ""
        return "{:.3f}".format(sf * share)
    v = entry.get(key)
    if spec == "phases":
        if not isinstance(v, dict):
            return ""
        return " ".join("{} {:.0f}%".format(k, 100 * f)
                        for k, f in v.items() if _num(f) is not None)
    if _num(v) is None:
        return ""
    if spec == "rss":
        return "{:.0f}".format(v / (1 << 20))
    return spec.format(v)


def load_rows(repo_dir):
    """Config rows, kernel rows, fleet-scaling points, run notes."""
    rows, kernel_rows, place_rows, fleet_rows, notes = [], [], [], [], []
    paths = sorted(glob.glob(os.path.join(repo_dir, "BENCH_PR*.json")),
                   key=pr_number)
    if not paths:
        sys.exit(f"bench_trend: no BENCH_PR*.json under {repo_dir}")
    for path in paths:
        # Reports grew sections over time and may predate any given
        # probe; a report that is unreadable or oddly shaped is skipped
        # with a warning rather than sinking the whole trajectory.
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_trend: skipping {path}: {e}", file=sys.stderr)
            continue
        if not isinstance(doc, dict):
            print(f"bench_trend: skipping {path}: not a JSON object",
                  file=sys.stderr)
            continue
        runs = doc.get("runs")
        if not isinstance(runs, list):
            runs = []
        for run in runs:
            if not isinstance(run, dict):
                continue
            report, label = os.path.basename(path), run.get("label", "")
            configs = run.get("configs")
            for cfg in configs if isinstance(configs, list) else []:
                if not isinstance(cfg, dict):
                    continue
                rows.append({
                    "report": report,
                    "label": label,
                    "config": cfg.get("config", ""),
                    "entry": cfg,
                })
            for section, sink in (("gf_kernel", kernel_rows),
                                  ("place_kernel", place_rows)):
                sec = run.get(section)
                kernels = sec.get("kernels") if isinstance(sec, dict) else None
                for kern in kernels if isinstance(kernels, list) else []:
                    if isinstance(kern, dict) and kern.get("supported"):
                        sink.append({
                            "report": report,
                            "label": label,
                            "kernel": kern.get("kernel", ""),
                            "entry": kern,
                        })
            # Fleet scaling (PR 10 onwards): a list of {workers,
            # trials_per_sec, wall_secs} points, or null/absent when
            # the probe could not run (e.g. fleet binary not built).
            sec = run.get("fleet_scaling")
            points = sec.get("points") if isinstance(sec, dict) else None
            for pt in points if isinstance(points, list) else []:
                if isinstance(pt, dict) and _num(pt.get("workers")) is not None:
                    fleet_rows.append({
                        "report": report,
                        "label": label,
                        "entry": pt,
                    })
            if run.get("notes"):
                notes.append((report, label, run["notes"]))
    if not rows and not kernel_rows:
        sys.exit(f"bench_trend: no usable runs in any report under {repo_dir}")
    return rows, kernel_rows, place_rows, fleet_rows, notes


def render_kernel_table(out, title, rows, columns):
    print(f"\n## {title}\n", file=out)
    headers = ["report", "label", "kernel"] + [c[0] for c in columns]
    print("| " + " | ".join(headers) + " |", file=out)
    print("|" + "---|" * len(headers), file=out)
    for r in rows:
        cells = [r["report"], r["label"], r["kernel"]]
        for _, key in columns:
            v = _num(r["entry"].get(key))
            cells.append("" if v is None else "{:,.0f}".format(v))
        print("| " + " | ".join(cells) + " |", file=out)


def render_fleet_table(out, rows):
    """Workers vs trials/sec, with speedup relative to each run's
    1-worker point (empty when that baseline is absent or zero)."""
    print("\n## Fleet scaling (workers vs trials/sec)\n", file=out)
    headers = ["report", "label", "workers"] + [c[0] for c in FLEET_COLUMNS] \
        + ["speedup vs 1 worker"]
    print("| " + " | ".join(headers) + " |", file=out)
    print("|" + "---|" * len(headers), file=out)
    base = {}
    for r in rows:
        tps = _num(r["entry"].get("trials_per_sec"))
        if _num(r["entry"].get("workers")) == 1 and tps:
            base[(r["report"], r["label"])] = tps
    for r in rows:
        e = r["entry"]
        cells = [r["report"], r["label"], "{:.0f}".format(e["workers"])]
        for _, key in FLEET_COLUMNS:
            v = _num(e.get(key))
            cells.append("" if v is None else "{:,.2f}".format(v))
        tps = _num(e.get("trials_per_sec"))
        b = base.get((r["report"], r["label"]))
        cells.append("" if tps is None or not b else "{:.2f}x".format(tps / b))
        print("| " + " | ".join(cells) + " |", file=out)


def render_markdown(rows, kernel_rows, place_rows, fleet_rows, notes):
    out = io.StringIO()
    print("# Benchmark trajectory", file=out)
    print(file=out)
    print("Trial throughput per tracked config across the PR sequence", file=out)
    print("(`scripts/bench_trend.py`; empty cells predate the probe).", file=out)
    for config in sorted({r["config"] for r in rows}):
        print(f"\n## {config}\n", file=out)
        headers = ["report", "label"] + [c[0] for c in COLUMNS]
        print("| " + " | ".join(headers) + " |", file=out)
        print("|" + "---|" * len(headers), file=out)
        for r in rows:
            if r["config"] != config:
                continue
            cells = [r["report"], r["label"]]
            cells += [fmt(r["entry"], key, spec) for _, key, spec in COLUMNS]
            print("| " + " | ".join(cells) + " |", file=out)
    if kernel_rows:
        render_kernel_table(out, "GF(2^8) region kernels", kernel_rows,
                            KERNEL_COLUMNS)
    if place_rows:
        render_kernel_table(out, "Placement kernels", place_rows,
                            PLACE_KERNEL_COLUMNS)
    if fleet_rows:
        render_fleet_table(out, fleet_rows)
    if notes:
        print("\n## Notes\n", file=out)
        for report, label, text in notes:
            print(f"- **{report} / {label}**: {text}", file=out)
    return out.getvalue()


def render_csv(rows, kernel_rows, place_rows, fleet_rows):
    def cell(v):
        return json.dumps(v) if isinstance(v, dict) else v

    keys = sorted({k for r in rows for k in r["entry"]})
    out = io.StringIO()
    w = csv.writer(out)
    w.writerow(["report", "label"] + keys)
    for r in rows:
        w.writerow([r["report"], r["label"]] +
                   [cell(r["entry"].get(k, "")) for k in keys])
    for krows, columns in ((kernel_rows, KERNEL_COLUMNS),
                           (place_rows, PLACE_KERNEL_COLUMNS)):
        if not krows:
            continue
        kkeys = [k for _, k in columns]
        w.writerow([])
        w.writerow(["report", "label", "kernel"] + kkeys)
        for r in krows:
            w.writerow([r["report"], r["label"], r["kernel"]] +
                       [r["entry"].get(k, "") for k in kkeys])
    if fleet_rows:
        fkeys = ["workers"] + [k for _, k in FLEET_COLUMNS]
        w.writerow([])
        w.writerow(["report", "label"] + fkeys)
        for r in fleet_rows:
            w.writerow([r["report"], r["label"]] +
                       [r["entry"].get(k, "") for k in fkeys])
    return out.getvalue()


def main(argv):
    repo_dir, md_out, csv_out = ".", None, None
    it = iter(argv)
    for arg in it:
        if arg == "--dir":
            repo_dir = next(it, None) or sys.exit("--dir needs a value")
        elif arg == "--md":
            md_out = next(it, None) or sys.exit("--md needs a value")
        elif arg == "--csv":
            csv_out = next(it, None) or sys.exit("--csv needs a value")
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    rows, kernel_rows, place_rows, fleet_rows, notes = load_rows(repo_dir)
    md = render_markdown(rows, kernel_rows, place_rows, fleet_rows, notes)
    if md_out:
        with open(md_out, "w") as f:
            f.write(md)
        print(f"bench_trend: wrote {md_out} ({len(rows)} rows)")
    else:
        print(md, end="")
    if csv_out:
        with open(csv_out, "w") as f:
            f.write(render_csv(rows, kernel_rows, place_rows, fleet_rows))
        print(f"bench_trend: wrote {csv_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
