#!/usr/bin/env python3
"""Merge the tracked BENCH_PR*.json reports into one perf trajectory.

Usage:
    bench_trend.py [--dir REPO] [--md OUT.md] [--csv OUT.csv]

Each PR's benchmark report (`crates/bench/src/bin/report.rs`) is a
snapshot of trial throughput at that point in the repo's history; this
script lines them up into a single per-config table — one row per
(report, run label) — so the trajectory is readable at a glance and
plottable from the CSV. Reports grew columns over time (setup split,
telemetry and monitor overhead probes), so missing fields render as
empty cells rather than failing. Stdlib only; used by the `bench-trend`
CI job, which uploads the outputs as artifacts.
"""

import csv
import glob
import io
import json
import os
import re
import sys

# (column header, config-entry key, format)
COLUMNS = [
    ("events/sec", "events_per_sec", "{:,.0f}"),
    ("loop events/sec", "loop_events_per_sec", "{:,.0f}"),
    ("parallel trials/sec", "parallel_trials_per_sec", "{:,.1f}"),
    ("setup frac", "setup_frac", "{:.3f}"),
    ("peak RSS MiB", "peak_rss_bytes", "rss"),
    ("telemetry off/on", ("telemetry_off_events_per_sec",
                          "telemetry_on_events_per_sec"), "pair"),
    ("monitor off/on", ("monitor_off_events_per_sec",
                        "monitor_on_events_per_sec"), "pair"),
]


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)\.json$", path)
    return int(m.group(1)) if m else -1


def fmt(entry, key, spec):
    if spec == "pair":
        off, on = (entry.get(k) for k in key)
        if off is None or on is None:
            return ""
        return "{:,.0f} / {:,.0f} ({:+.1f}%)".format(off, on, 100 * (on / off - 1))
    v = entry.get(key)
    if v is None:
        return ""
    if spec == "rss":
        return "{:.0f}".format(v / (1 << 20))
    return spec.format(v)


def load_rows(repo_dir):
    """One row per (report file, run label, config)."""
    rows = []
    paths = sorted(glob.glob(os.path.join(repo_dir, "BENCH_PR*.json")),
                   key=pr_number)
    if not paths:
        sys.exit(f"bench_trend: no BENCH_PR*.json under {repo_dir}")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for run in doc.get("runs", []):
            for cfg in run.get("configs", []):
                rows.append({
                    "report": os.path.basename(path),
                    "label": run.get("label", ""),
                    "config": cfg.get("config", ""),
                    "entry": cfg,
                })
    return rows


def render_markdown(rows):
    out = io.StringIO()
    print("# Benchmark trajectory", file=out)
    print(file=out)
    print("Trial throughput per tracked config across the PR sequence", file=out)
    print("(`scripts/bench_trend.py`; empty cells predate the probe).", file=out)
    for config in sorted({r["config"] for r in rows}):
        print(f"\n## {config}\n", file=out)
        headers = ["report", "label"] + [c[0] for c in COLUMNS]
        print("| " + " | ".join(headers) + " |", file=out)
        print("|" + "---|" * len(headers), file=out)
        for r in rows:
            if r["config"] != config:
                continue
            cells = [r["report"], r["label"]]
            cells += [fmt(r["entry"], key, spec) for _, key, spec in COLUMNS]
            print("| " + " | ".join(cells) + " |", file=out)
    return out.getvalue()


def render_csv(rows):
    keys = sorted({k for r in rows for k in r["entry"]})
    out = io.StringIO()
    w = csv.writer(out)
    w.writerow(["report", "label"] + keys)
    for r in rows:
        w.writerow([r["report"], r["label"]] +
                   [r["entry"].get(k, "") for k in keys])
    return out.getvalue()


def main(argv):
    repo_dir, md_out, csv_out = ".", None, None
    it = iter(argv)
    for arg in it:
        if arg == "--dir":
            repo_dir = next(it, None) or sys.exit("--dir needs a value")
        elif arg == "--md":
            md_out = next(it, None) or sys.exit("--md needs a value")
        elif arg == "--csv":
            csv_out = next(it, None) or sys.exit("--csv needs a value")
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    rows = load_rows(repo_dir)
    md = render_markdown(rows)
    if md_out:
        with open(md_out, "w") as f:
            f.write(md)
        print(f"bench_trend: wrote {md_out} ({len(rows)} rows)")
    else:
        print(md, end="")
    if csv_out:
        with open(csv_out, "w") as f:
            f.write(render_csv(rows))
        print(f"bench_trend: wrote {csv_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
