#!/usr/bin/env python3
"""Validate telemetry artifacts against the documented schema.

Usage:
    check_telemetry.py TIMELINE.csv POSTMORTEM.jsonl [--expect-loss]
    check_telemetry.py status STATUS.json
    check_telemetry.py fleet FLEET_STATUS.json [LATER_FLEET_STATUS.json]
    check_telemetry.py metrics METRICS.txt [LATER_METRICS.txt]
    check_telemetry.py convergence STREAM.jsonl [--expect-stop]
    check_telemetry.py spans SPANS.jsonl [--expect-loss]
    check_telemetry.py spans TRACE.json --chrome

The first form checks the timeline CSV and post-mortem JSONL produced
by `--timeline` and `FARM_POSTMORTEM` (schema: DESIGN.md section 11).
With `--expect-loss`, at least one post-mortem line must be present.

`status` validates a campaign status snapshot (`FARM_STATUS` /
`--status`, schema `farm-status-v1`, DESIGN.md section 13): required
keys, internal consistency (losses <= trials, p_loss == losses/trials,
Wilson interval brackets the estimate, campaign totals equal the batch
sums).

`fleet` validates a merged fleet coordinator snapshot (`farm-fleet` /
the `fleet` binary, schema `fleet-status-v1`, DESIGN.md section 18):
merged rollups equal to the per-worker sums, the pooled Wilson
interval bracketing the pooled p_loss, and — given a second, later
snapshot — per-worker counter monotonicity across scrapes (a worker
whose attempt count grew is skipped: a respawn restarts its range, so
its live counters legitimately reset).

`metrics` validates a `/metrics` scrape (`FARM_HTTP`): Prometheus text
exposition syntax (metric/label names, label escaping, HELP/TYPE
comments), counters named `*_total`, and — given a second, later
scrape — that every counter series is monotone non-decreasing.

`convergence` validates a convergence stream (`FARM_CONVERGENCE` /
`--convergence`, schema `farm-convergence-v1`, DESIGN.md section 15):
per-(batch, config) strictly-increasing trial counts with a thinning
decimation schedule, Wilson brackets, half-width consistency, losses
never informative-null, and exactly one final record per stream. With
`--expect-stop`, at least one stream must end at a stop-boundary
multiple (64 trials) with an informative rel_half_width — callers
request a batch total that is *not* a multiple of 64, so a boundary-
aligned final record proves the sequential stopping rule fired.

`spans` validates a recovery-span artifact (`FARM_SPANS` / `--spans`,
schemas `farm-spans-v1` + `farm-spans-bw-v1`, DESIGN.md section 16):
monotone phase timestamps, non-negative bytes and phase durations,
phase durations telescoping to the span window, exactly one terminal
outcome per span, and well-formed bandwidth-attribution rows. With
`--expect-loss`, at least one span must end in a loss outcome. With
`--chrome`, the file is instead validated as a Chrome trace-event
document (one JSON object with a `traceEvents` array of complete
events), the format Perfetto / chrome://tracing load.

Stdlib only; exits non-zero with a message on the first violation.
"""

import csv
import json
import re
import sys

GAUGES = [
    "failed_disks",
    "rebuilds_in_flight",
    "vulnerable_groups",
    "recovery_util",
    "spare_frac",
]
HEADER = ["batch", "sample", "t_secs", "gauge", "trials", "mean", "p10", "p90", "min", "max"]
CAUSE_TO_FATAL_EV = {"disk_failure": "failure", "latent_read_error": "latent"}
CHAIN_EVS = {"failure", "rebuild_start", "rebuild_done", "redirect", "no_target", "latent"}


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        fail(f"{path}: empty timeline")
    if rows[0] != HEADER:
        fail(f"{path}: bad header {rows[0]!r}")

    # Per batch: contiguous 1-based samples, all gauges in order per
    # sample, monotone t_secs, ordered bands.
    per_batch = {}
    for n, row in enumerate(rows[1:], start=2):
        if len(row) != len(HEADER):
            fail(f"{path}:{n}: expected {len(HEADER)} fields, got {len(row)}")
        batch, sample, gauge, trials = row[0], int(row[1]), row[3], int(row[4])
        t, mean, p10, p90 = (float(row[i]) for i in (2, 5, 6, 7))
        lo, hi = float(row[8]), float(row[9])
        if gauge not in GAUGES:
            fail(f"{path}:{n}: unknown gauge {gauge!r}")
        if trials < 1:
            fail(f"{path}:{n}: no trials pooled")
        if not (lo <= p10 <= p90 <= hi):
            fail(f"{path}:{n}: bands out of order min={lo} p10={p10} p90={p90} max={hi}")
        if not (0.0 <= mean <= hi):
            fail(f"{path}:{n}: mean {mean} outside [0, max={hi}]")
        seq = per_batch.setdefault(batch, [])
        expect_sample = len(seq) // len(GAUGES) + 1
        expect_gauge = GAUGES[len(seq) % len(GAUGES)]
        if sample != expect_sample or gauge != expect_gauge:
            fail(f"{path}:{n}: expected sample {expect_sample}/{expect_gauge}, "
                 f"got {sample}/{gauge}")
        if seq and sample > seq[-1][0] and t <= seq[-1][1]:
            fail(f"{path}:{n}: t_secs not increasing across samples")
        seq.append((sample, t))
    for batch, seq in per_batch.items():
        if len(seq) % len(GAUGES) != 0:
            fail(f"{path}: batch {batch} ends mid-sample ({len(seq)} rows)")
    n_rows = len(rows) - 1
    print(f"check_telemetry: {path}: {n_rows} rows, "
          f"{len(per_batch)} batch(es), all gauges present")


def check_postmortems(path, expect_loss):
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l]
    if expect_loss and not lines:
        fail(f"{path}: expected at least one post-mortem")
    for n, line in enumerate(lines, start=1):
        try:
            pm = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{n}: invalid JSON: {e}")
        for key in ("trial", "group", "t_secs", "cause", "dropped", "chain"):
            if key not in pm:
                fail(f"{path}:{n}: missing key {key!r}")
        if pm["cause"] not in CAUSE_TO_FATAL_EV:
            fail(f"{path}:{n}: unknown cause {pm['cause']!r}")
        chain = pm["chain"]
        if not chain:
            fail(f"{path}:{n}: empty causal chain")
        for ev in chain:
            if ev["ev"] not in CHAIN_EVS:
                fail(f"{path}:{n}: unknown chain event {ev['ev']!r}")
            if ev["t_secs"] > pm["t_secs"]:
                fail(f"{path}:{n}: chain event after the loss instant")
        ts = [ev["t_secs"] for ev in chain]
        if ts != sorted(ts):
            fail(f"{path}:{n}: chain is not chronological")
        # The chain must end in the exact event that dropped the group
        # below m.
        fatal = CAUSE_TO_FATAL_EV[pm["cause"]]
        if chain[-1]["ev"] != fatal:
            fail(f"{path}:{n}: cause {pm['cause']!r} but chain ends in "
                 f"{chain[-1]['ev']!r} (want {fatal!r})")
    print(f"check_telemetry: {path}: {len(lines)} post-mortem(s), "
          f"chains chronological and cause-consistent")


def _num_or_null(doc, key, where):
    v = doc.get(key)
    if v is not None and not isinstance(v, (int, float)):
        fail(f"{where}: {key} must be a number or null, got {v!r}")
    return v


STATUS_BATCH_KEYS = [
    "batch", "config", "done", "trials_done", "trials_total", "losses",
    "events", "trials_per_sec", "eta_secs", "p_loss", "wilson95_lo",
    "wilson95_hi", "ci_half_width", "rel_half_width", "anchor_p_loss",
    "anchor_drift", "trial_secs_p50", "trial_secs_p99",
]


def check_status(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    if doc.get("schema") != "farm-status-v1":
        fail(f"{path}: schema {doc.get('schema')!r}, want 'farm-status-v1'")
    for key in ("pid", "seq", "trials_done", "trials_total", "losses", "events"):
        if not isinstance(doc.get(key), int):
            fail(f"{path}: {key} must be an integer, got {doc.get(key)!r}")
    if not isinstance(doc.get("elapsed_secs"), (int, float)) or doc["elapsed_secs"] < 0:
        fail(f"{path}: bad elapsed_secs {doc.get('elapsed_secs')!r}")
    addr = doc.get("http_addr")
    if addr is not None and not isinstance(addr, str):
        fail(f"{path}: http_addr must be a string or null, got {addr!r}")
    rss = doc.get("peak_rss_bytes")
    if rss is not None and (not isinstance(rss, int) or rss <= 0):
        fail(f"{path}: peak_rss_bytes must be a positive integer or null "
             f"(never a fake 0), got {rss!r}")
    _num_or_null(doc, "events_per_sec", path)

    batches = doc.get("batches")
    if not isinstance(batches, list):
        fail(f"{path}: batches must be an array")
    sums = {"trials_done": 0, "trials_total": 0, "losses": 0, "events": 0}
    for i, b in enumerate(batches):
        where = f"{path}: batches[{i}]"
        for key in STATUS_BATCH_KEYS:
            if key not in b:
                fail(f"{where}: missing key {key!r}")
        if not isinstance(b["config"], str) or not b["config"]:
            fail(f"{where}: config must be a non-empty string")
        if not isinstance(b["done"], bool):
            fail(f"{where}: done must be a boolean")
        done, total, losses = b["trials_done"], b["trials_total"], b["losses"]
        if not (0 <= losses <= done <= total):
            fail(f"{where}: want 0 <= losses <= trials_done <= trials_total, "
                 f"got {losses}/{done}/{total}")
        if b["done"] and done != total:
            fail(f"{where}: done but only {done}/{total} trials")
        for key in ("trials_per_sec", "eta_secs", "trial_secs_p50",
                    "trial_secs_p99", "ci_half_width", "rel_half_width",
                    "anchor_p_loss", "anchor_drift"):
            _num_or_null(b, key, where)
        if losses == 0 and b["rel_half_width"] is not None:
            fail(f"{where}: rel_half_width must be null at zero losses")
        p = b["p_loss"]
        if done == 0:
            if p != 0:
                fail(f"{where}: p_loss {p} with no trials")
        elif p != losses / done:
            fail(f"{where}: p_loss {p} != losses/trials = {losses / done}")
        lo, hi = b["wilson95_lo"], b["wilson95_hi"]
        if not (0.0 <= lo <= p <= hi <= 1.0):
            fail(f"{where}: Wilson interval [{lo}, {hi}] does not bracket "
                 f"p_loss {p} inside [0, 1]")
    for key in sums:
        sums[key] = sum(b[key] for b in batches)
    for key, want in sums.items():
        if doc[key] != want:
            fail(f"{path}: campaign {key} {doc[key]} != batch sum {want}")
    print(f"check_telemetry: {path}: seq {doc['seq']}, {len(batches)} "
          f"batch(es), totals consistent")


FLEET_WORKER_KEYS = [
    "worker", "pid", "range_lo", "range_hi", "alive", "done", "attempts",
    "http_addr", "trials_done", "losses", "events", "trials_per_sec",
]


def _load_fleet(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    if doc.get("schema") != "fleet-status-v1":
        fail(f"{path}: schema {doc.get('schema')!r}, want 'fleet-status-v1'")
    return doc


def check_fleet(path, later=None):
    """Validate a fleet-status-v1 snapshot (schema: DESIGN.md sec 18).

    Checks the merged rollups against the per-worker rows (merged
    trials == sum of worker trials, likewise losses/events), the
    pooled Wilson interval bracketing the pooled p_loss, and — given a
    second, later snapshot — per-worker counter monotonicity (skipped
    for a worker whose attempt count grew: a respawned worker restarts
    its range from scratch, so its live counters legitimately reset).
    """
    doc = _load_fleet(path)
    for key in ("pid", "seq", "trials_total", "trials_done", "losses",
                "events", "workers_total", "workers_up"):
        if not isinstance(doc.get(key), int):
            fail(f"{path}: {key} must be an integer, got {doc.get(key)!r}")
    if not isinstance(doc.get("elapsed_secs"), (int, float)) or doc["elapsed_secs"] < 0:
        fail(f"{path}: bad elapsed_secs {doc.get('elapsed_secs')!r}")
    addr = doc.get("http_addr")
    if addr is not None and not isinstance(addr, str):
        fail(f"{path}: http_addr must be a string or null, got {addr!r}")
    _num_or_null(doc, "trials_per_sec", path)
    _num_or_null(doc, "eta_secs", path)

    pooled = doc.get("pooled")
    if not isinstance(pooled, dict):
        fail(f"{path}: pooled must be an object")
    for key in ("p_loss", "wilson95_lo", "wilson95_hi"):
        if not isinstance(pooled.get(key), (int, float)):
            fail(f"{path}: pooled.{key} must be a number, got {pooled.get(key)!r}")
    p, lo, hi = pooled["p_loss"], pooled["wilson95_lo"], pooled["wilson95_hi"]
    if not (0.0 <= lo <= p <= hi <= 1.0):
        fail(f"{path}: pooled Wilson interval [{lo}, {hi}] does not bracket "
             f"p_loss {p} inside [0, 1]")
    done, losses = doc["trials_done"], doc["losses"]
    want_p = 0 if done == 0 else min(losses, done) / done
    if p != want_p:
        fail(f"{path}: pooled p_loss {p} != losses/trials = {want_p}")

    workers = doc.get("workers")
    if not isinstance(workers, list):
        fail(f"{path}: workers must be an array")
    if len(workers) != doc["workers_total"]:
        fail(f"{path}: workers_total {doc['workers_total']} != "
             f"{len(workers)} worker rows")
    sums = {"trials_done": 0, "losses": 0, "events": 0}
    up = 0
    for i, w in enumerate(workers):
        where = f"{path}: workers[{i}]"
        for key in FLEET_WORKER_KEYS:
            if key not in w:
                fail(f"{where}: missing key {key!r}")
        if w["worker"] != i:
            fail(f"{where}: worker index {w['worker']}, want {i}")
        for key in ("range_lo", "range_hi", "attempts", "trials_done",
                    "losses", "events"):
            if not isinstance(w[key], int) or w[key] < 0:
                fail(f"{where}: {key} must be a non-negative integer, "
                     f"got {w[key]!r}")
        for key in ("alive", "done"):
            if not isinstance(w[key], bool):
                fail(f"{where}: {key} must be a boolean")
        if w["pid"] is not None and not isinstance(w["pid"], int):
            fail(f"{where}: pid must be an integer or null")
        if w["http_addr"] is not None and not isinstance(w["http_addr"], str):
            fail(f"{where}: http_addr must be a string or null")
        _num_or_null(w, "trials_per_sec", where)
        span = w["range_hi"] - w["range_lo"]
        if span < 0:
            fail(f"{where}: range [{w['range_lo']}, {w['range_hi']}) inverted")
        if not (w["losses"] <= w["trials_done"] <= span):
            fail(f"{where}: want losses <= trials_done <= range span, got "
                 f"{w['losses']}/{w['trials_done']}/{span}")
        if w["done"]:
            if w["alive"]:
                fail(f"{where}: done worker still alive")
            if w["trials_done"] != span:
                fail(f"{where}: done but {w['trials_done']}/{span} trials")
        up += w["alive"]
        for key in sums:
            sums[key] += w[key]
    if up != doc["workers_up"]:
        fail(f"{path}: workers_up {doc['workers_up']} != {up} alive rows")
    for key, want in sums.items():
        if doc[key] != want:
            fail(f"{path}: merged {key} {doc[key]} != worker sum {want}")
    print(f"check_telemetry: {path}: seq {doc['seq']}, "
          f"{len(workers)} worker(s), merged totals == worker sums")

    if later is None:
        return
    doc2 = _load_fleet(later)
    if doc2["seq"] <= doc["seq"]:
        fail(f"{later}: seq went backwards or stalled: "
             f"{doc['seq']} -> {doc2['seq']}")
    before = {w["worker"]: w for w in workers}
    for w2 in doc2.get("workers", []):
        w1 = before.get(w2["worker"])
        if w1 is None:
            continue
        if w2["attempts"] < w1["attempts"]:
            fail(f"{later}: workers[{w2['worker']}] attempts went backwards: "
                 f"{w1['attempts']} -> {w2['attempts']}")
        if w2["attempts"] > w1["attempts"]:
            continue  # respawned: live counters legitimately reset
        for key in ("trials_done", "losses", "events"):
            if w2[key] < w1[key]:
                fail(f"{later}: workers[{w2['worker']}] counter {key} went "
                     f"backwards: {w1[key]} -> {w2[key]}")
        if w1["done"] and not w2["done"]:
            fail(f"{later}: workers[{w2['worker']}] un-finished itself")
    print(f"check_telemetry: {later}: per-worker counters monotone vs {path}")


CONVERGENCE_KEYS = [
    "schema", "batch", "config", "checkpoint", "trials", "losses",
    "p_loss", "wilson95_lo", "wilson95_hi", "ci_half_width",
    "rel_half_width", "anchor_p_loss", "anchor_drift", "batch_var_ratio",
    "first_loss_p50_secs", "first_loss_p99_secs", "loss_gap_p50_trials",
    "final",
]
STOP_CHECK_EVERY = 64  # keep in sync with farm_obs::STOP_CHECK_EVERY


def check_convergence(path, expect_stop=False):
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l]
    if not lines:
        fail(f"{path}: empty convergence stream")
    streams = {}  # (batch, config) -> list of records
    for n, line in enumerate(lines, start=1):
        where = f"{path}:{n}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{where}: invalid JSON: {e}")
        if rec.get("schema") != "farm-convergence-v1":
            fail(f"{where}: schema {rec.get('schema')!r}, "
                 f"want 'farm-convergence-v1'")
        for key in CONVERGENCE_KEYS:
            if key not in rec:
                fail(f"{where}: missing key {key!r}")
        for key in ("batch", "checkpoint", "trials", "losses"):
            if not isinstance(rec[key], int) or rec[key] < 0:
                fail(f"{where}: {key} must be a non-negative integer, "
                     f"got {rec[key]!r}")
        if not isinstance(rec["config"], str) or not rec["config"]:
            fail(f"{where}: config must be a non-empty string")
        if not isinstance(rec["final"], bool):
            fail(f"{where}: final must be a boolean")
        # Core trajectory numbers must be present and finite (jnum
        # renders non-finite values as null, which is a violation here).
        for key in ("p_loss", "wilson95_lo", "wilson95_hi", "ci_half_width"):
            if not isinstance(rec[key], (int, float)):
                fail(f"{where}: {key} must be a finite number, "
                     f"got {rec[key]!r}")
        trials, losses, p = rec["trials"], rec["losses"], rec["p_loss"]
        if not (0 <= losses <= trials) or trials == 0:
            fail(f"{where}: want 0 <= losses <= trials with trials >= 1, "
                 f"got {losses}/{trials}")
        if p != losses / trials:
            fail(f"{where}: p_loss {p} != losses/trials = {losses / trials}")
        lo, hi, hw = rec["wilson95_lo"], rec["wilson95_hi"], rec["ci_half_width"]
        # The score interval's endpoints carry ~1 ulp of rounding (lo can
        # surface as ~7e-18 instead of 0 at zero losses), so the bracket
        # check allows that much slack.
        if not (0.0 <= lo <= p + 1e-12 and p - 1e-12 <= hi <= 1.0):
            fail(f"{where}: Wilson interval [{lo}, {hi}] does not bracket "
                 f"p_loss {p} inside [0, 1]")
        if abs(hw - (hi - lo) / 2) > 1e-12:
            fail(f"{where}: ci_half_width {hw} != (hi - lo)/2")
        rel = _num_or_null(rec, "rel_half_width", where)
        if losses == 0 and rel is not None:
            fail(f"{where}: rel_half_width must be null at zero losses")
        if losses > 0 and (rel is None or abs(rel - hw / p) > 1e-9 * max(1.0, rel)):
            fail(f"{where}: rel_half_width {rel!r} != half-width/p̂ = {hw / p}")
        for key in ("anchor_p_loss", "anchor_drift", "batch_var_ratio",
                    "first_loss_p50_secs", "first_loss_p99_secs",
                    "loss_gap_p50_trials"):
            _num_or_null(rec, key, where)
        streams.setdefault((rec["batch"], rec["config"]), []).append((n, rec))

    stopped = 0
    for (batch, config), recs in streams.items():
        where = f"{path}: batch {batch} ({config!r})"
        trials = [r["trials"] for _, r in recs]
        if any(b <= a for a, b in zip(trials, trials[1:])):
            fail(f"{where}: checkpoint trials not strictly increasing: "
                 f"{trials}")
        # Geometric decimation only thins: gaps are non-decreasing,
        # except the final record, which lands wherever the batch ends.
        gaps = [b - a for a, b in zip(trials, trials[1:])]
        body = gaps[:-1] if len(gaps) >= 2 else []
        if any(b < a for a, b in zip(body, body[1:])):
            fail(f"{where}: decimation gaps shrink mid-stream: {trials}")
        finals = [r["final"] for _, r in recs]
        if finals.count(True) != 1 or not finals[-1]:
            fail(f"{where}: want exactly one final record, at the end")
        losses = [r["losses"] for _, r in recs]
        if any(b < a for a, b in zip(losses, losses[1:])):
            fail(f"{where}: loss counter went backwards: {losses}")
        last = recs[-1][1]
        if (last["trials"] % STOP_CHECK_EVERY == 0
                and last["rel_half_width"] is not None):
            stopped += 1
    if expect_stop and stopped == 0:
        fail(f"{path}: --expect-stop but no stream ended at a "
             f"boundary-aligned trial count with an informative CI")
    print(f"check_telemetry: {path}: {len(lines)} record(s), "
          f"{len(streams)} stream(s), trajectories consistent")


SPAN_OUTCOMES = {"rebuilt", "loss_disk", "loss_latent", "truncated"}
SPAN_INT_KEYS = ("batch", "trial", "span", "group", "block", "fail_disk",
                 "bytes", "attempts", "redirects", "no_target")
SPAN_SECS_KEYS = ("detect_secs", "queue_secs", "transfer_secs")
BW_INT_KEYS = ("batch", "trial", "id", "bytes_read", "bytes_written", "spans")


def _finite_num(rec, key, where):
    v = rec.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(f"{where}: {key} must be a number, got {v!r}")
    return v


def check_spans(path, expect_loss=False):
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l]
    if not lines:
        fail(f"{path}: empty spans artifact")
    n_spans = n_bw = n_loss = 0
    seen = set()  # (batch, trial, span): exactly one terminal row each
    for n, line in enumerate(lines, start=1):
        where = f"{path}:{n}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{where}: invalid JSON: {e}")
        schema = rec.get("schema")
        if not isinstance(rec.get("config"), str) or not rec["config"]:
            fail(f"{where}: config must be a non-empty string")
        if schema == "farm-spans-v1":
            n_spans += 1
            for key in SPAN_INT_KEYS:
                v = rec.get(key)
                if not isinstance(v, int) or v < 0:
                    fail(f"{where}: {key} must be a non-negative integer, "
                         f"got {v!r}")
            target = rec.get("target")
            if target is not None and (not isinstance(target, int) or target < 0):
                fail(f"{where}: target must be a non-negative integer or "
                     f"null, got {target!r}")
            key = (rec["batch"], rec["trial"], rec["span"])
            if key in seen:
                fail(f"{where}: span {key} has more than one terminal row")
            seen.add(key)
            outcome = rec.get("outcome")
            if outcome not in SPAN_OUTCOMES:
                fail(f"{where}: unknown outcome {outcome!r}")
            if outcome.startswith("loss_"):
                n_loss += 1
            # Phase timestamps are monotone where present (null = the
            # span never reached that phase). `t_start` is the *planned*
            # transfer start: a span that dies while still queued closes
            # with t_end < t_start and zero transfer time, so t_end must
            # only follow t_start once a transfer actually ran.
            t_fail = _finite_num(rec, "t_fail", where)
            t_end = _finite_num(rec, "t_end", where)
            last, last_key = t_fail, "t_fail"
            for key in ("t_detect", "t_start"):
                v = rec.get(key)
                if v is None:
                    continue
                if not isinstance(v, (int, float)):
                    fail(f"{where}: {key} must be a number or null, got {v!r}")
                if v < last:
                    fail(f"{where}: {key} {v} precedes {last_key} {last}")
                last, last_key = v, key
            t_detect = rec.get("t_detect")
            if t_detect is not None and t_end < t_detect:
                fail(f"{where}: t_end {t_end} precedes t_detect {t_detect}")
            if t_end < t_fail:
                fail(f"{where}: t_end {t_end} precedes t_fail {t_fail}")
            if rec.get("transfer_secs", 0) > 0 and rec.get("t_start") is not None \
                    and t_end < rec["t_start"]:
                fail(f"{where}: transfer ran but t_end {t_end} precedes "
                     f"t_start {rec['t_start']}")
            total = 0.0
            for key in SPAN_SECS_KEYS:
                v = _finite_num(rec, key, where)
                if v < 0:
                    fail(f"{where}: {key} must be >= 0, got {v}")
                total += v
            window = t_end - t_fail
            if abs(total - window) > 1e-6 * max(1.0, window):
                fail(f"{where}: phase durations {total} don't telescope "
                     f"to the span window {window}")
        elif schema == "farm-spans-bw-v1":
            n_bw += 1
            if rec.get("resource") not in ("disk", "group"):
                fail(f"{where}: resource must be 'disk' or 'group', "
                     f"got {rec.get('resource')!r}")
            for key in BW_INT_KEYS:
                v = rec.get(key)
                if not isinstance(v, int) or v < 0:
                    fail(f"{where}: {key} must be a non-negative integer, "
                         f"got {v!r}")
            if _finite_num(rec, "busy_secs", where) < 0:
                fail(f"{where}: busy_secs must be >= 0")
        else:
            fail(f"{where}: unknown schema {schema!r}")
    if n_spans == 0:
        fail(f"{path}: no farm-spans-v1 rows")
    if expect_loss and n_loss == 0:
        fail(f"{path}: --expect-loss but no span ended in a loss outcome")
    print(f"check_telemetry: {path}: {n_spans} span(s), {n_bw} bandwidth "
          f"row(s), {n_loss} loss(es), phases telescoped")


def check_chrome_trace(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event must be an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: name must be a non-empty string")
        if ev.get("ph") != "X":
            fail(f"{where}: ph must be 'X' (complete events), "
                 f"got {ev.get('ph')!r}")
        for key in ("ts", "dur"):
            _finite_num(ev, key, where)
        if ev["dur"] < 0:
            fail(f"{where}: dur must be >= 0, got {ev['dur']}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where}: {key} must be an integer, got {ev.get(key)!r}")
    print(f"check_telemetry: {path}: {len(events)} trace event(s), "
          f"document well-formed")


METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"(,|$)')


def parse_labels(raw, where):
    """Parse `k="v",...`, enforcing full consumption (catches bad
    escapes, bare values, stray commas)."""
    labels, pos = {}, 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            fail(f"{where}: bad label syntax at {raw[pos:]!r}")
        labels[m.group(1)] = m.group(2)
        pos = m.end()
    return labels


def parse_metrics(path):
    """Return ({series: value}, {family: type}) for one exposition."""
    series, types = {}, {}
    with open(path) as f:
        lines = f.read().splitlines()
    for n, line in enumerate(lines, start=1):
        where = f"{path}:{n}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"{where}: bad comment {line!r}")
            if not METRIC_NAME_RE.match(parts[2]):
                fail(f"{where}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "summary", "histogram",
                                "untyped"):
                    fail(f"{where}: bad metric type {kind!r}")
                types[parts[2]] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: bad sample line {line!r}")
        name, raw_labels, value = m.groups()
        labels = parse_labels(raw_labels, where) if raw_labels else {}
        try:
            float(value)
        except ValueError:
            fail(f"{where}: bad sample value {value!r}")
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if family not in types and name.endswith(suffix):
                family = name[: -len(suffix)]
        if family not in types:
            fail(f"{where}: sample {name!r} has no # TYPE")
        if types[family] == "counter" and not name.endswith("_total"):
            fail(f"{where}: counter {name!r} must end in _total")
        key = (name, tuple(sorted(labels.items())))
        if key in series:
            fail(f"{where}: duplicate series {name}{{{raw_labels}}}")
        series[key] = (types[family], float(value))
    return series


def check_metrics(path, later=None):
    series = parse_metrics(path)
    counters = {k: v for k, (t, v) in series.items() if t == "counter"}
    if not counters:
        fail(f"{path}: no counters exposed")
    print(f"check_telemetry: {path}: {len(series)} series "
          f"({len(counters)} counter(s)), exposition well-formed")
    if later is None:
        return
    series2 = parse_metrics(later)
    for key, v1 in counters.items():
        name = f"{key[0]}{{{','.join(f'{k}={v!r}' for k, v in key[1])}}}"
        if key not in series2:
            fail(f"{later}: counter {name} disappeared")
        v2 = series2[key][1]
        if v2 < v1:
            fail(f"{later}: counter {name} went backwards: {v1} -> {v2}")
    print(f"check_telemetry: {later}: all {len(counters)} counter(s) "
          f"monotone vs {path}")


def main(argv):
    if argv and argv[0] == "status":
        if len(argv) != 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        check_status(argv[1])
        print("check_telemetry: OK")
        return 0
    if argv and argv[0] == "fleet":
        if len(argv) not in (2, 3):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        check_fleet(argv[1], argv[2] if len(argv) == 3 else None)
        print("check_telemetry: OK")
        return 0
    if argv and argv[0] == "metrics":
        if len(argv) not in (2, 3):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        check_metrics(argv[1], argv[2] if len(argv) == 3 else None)
        print("check_telemetry: OK")
        return 0
    if argv and argv[0] == "spans":
        args = [a for a in argv[1:] if a not in ("--expect-loss", "--chrome")]
        if len(args) != 1:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        if "--chrome" in argv:
            check_chrome_trace(args[0])
        else:
            check_spans(args[0], expect_loss="--expect-loss" in argv)
        print("check_telemetry: OK")
        return 0
    if argv and argv[0] == "convergence":
        args = [a for a in argv[1:] if a != "--expect-stop"]
        if len(args) != 1:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        check_convergence(args[0], expect_stop="--expect-stop" in argv)
        print("check_telemetry: OK")
        return 0
    args = [a for a in argv if a != "--expect-loss"]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check_timeline(args[0])
    check_postmortems(args[1], expect_loss="--expect-loss" in argv)
    print("check_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
