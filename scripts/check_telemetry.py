#!/usr/bin/env python3
"""Validate telemetry artifacts against the documented schema.

Usage:
    check_telemetry.py TIMELINE.csv POSTMORTEM.jsonl [--expect-loss]

Checks the timeline CSV and post-mortem JSONL produced by `--timeline`
and `FARM_POSTMORTEM` (schema: DESIGN.md section 11). With
`--expect-loss`, at least one post-mortem line must be present.
Stdlib only; exits non-zero with a message on the first violation.
"""

import csv
import json
import sys

GAUGES = [
    "failed_disks",
    "rebuilds_in_flight",
    "vulnerable_groups",
    "recovery_util",
    "spare_frac",
]
HEADER = ["batch", "sample", "t_secs", "gauge", "trials", "mean", "p10", "p90", "min", "max"]
CAUSE_TO_FATAL_EV = {"disk_failure": "failure", "latent_read_error": "latent"}
CHAIN_EVS = {"failure", "rebuild_start", "rebuild_done", "redirect", "no_target", "latent"}


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        fail(f"{path}: empty timeline")
    if rows[0] != HEADER:
        fail(f"{path}: bad header {rows[0]!r}")

    # Per batch: contiguous 1-based samples, all gauges in order per
    # sample, monotone t_secs, ordered bands.
    per_batch = {}
    for n, row in enumerate(rows[1:], start=2):
        if len(row) != len(HEADER):
            fail(f"{path}:{n}: expected {len(HEADER)} fields, got {len(row)}")
        batch, sample, gauge, trials = row[0], int(row[1]), row[3], int(row[4])
        t, mean, p10, p90 = (float(row[i]) for i in (2, 5, 6, 7))
        lo, hi = float(row[8]), float(row[9])
        if gauge not in GAUGES:
            fail(f"{path}:{n}: unknown gauge {gauge!r}")
        if trials < 1:
            fail(f"{path}:{n}: no trials pooled")
        if not (lo <= p10 <= p90 <= hi):
            fail(f"{path}:{n}: bands out of order min={lo} p10={p10} p90={p90} max={hi}")
        if not (0.0 <= mean <= hi):
            fail(f"{path}:{n}: mean {mean} outside [0, max={hi}]")
        seq = per_batch.setdefault(batch, [])
        expect_sample = len(seq) // len(GAUGES) + 1
        expect_gauge = GAUGES[len(seq) % len(GAUGES)]
        if sample != expect_sample or gauge != expect_gauge:
            fail(f"{path}:{n}: expected sample {expect_sample}/{expect_gauge}, "
                 f"got {sample}/{gauge}")
        if seq and sample > seq[-1][0] and t <= seq[-1][1]:
            fail(f"{path}:{n}: t_secs not increasing across samples")
        seq.append((sample, t))
    for batch, seq in per_batch.items():
        if len(seq) % len(GAUGES) != 0:
            fail(f"{path}: batch {batch} ends mid-sample ({len(seq)} rows)")
    n_rows = len(rows) - 1
    print(f"check_telemetry: {path}: {n_rows} rows, "
          f"{len(per_batch)} batch(es), all gauges present")


def check_postmortems(path, expect_loss):
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l]
    if expect_loss and not lines:
        fail(f"{path}: expected at least one post-mortem")
    for n, line in enumerate(lines, start=1):
        try:
            pm = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{n}: invalid JSON: {e}")
        for key in ("trial", "group", "t_secs", "cause", "dropped", "chain"):
            if key not in pm:
                fail(f"{path}:{n}: missing key {key!r}")
        if pm["cause"] not in CAUSE_TO_FATAL_EV:
            fail(f"{path}:{n}: unknown cause {pm['cause']!r}")
        chain = pm["chain"]
        if not chain:
            fail(f"{path}:{n}: empty causal chain")
        for ev in chain:
            if ev["ev"] not in CHAIN_EVS:
                fail(f"{path}:{n}: unknown chain event {ev['ev']!r}")
            if ev["t_secs"] > pm["t_secs"]:
                fail(f"{path}:{n}: chain event after the loss instant")
        ts = [ev["t_secs"] for ev in chain]
        if ts != sorted(ts):
            fail(f"{path}:{n}: chain is not chronological")
        # The chain must end in the exact event that dropped the group
        # below m.
        fatal = CAUSE_TO_FATAL_EV[pm["cause"]]
        if chain[-1]["ev"] != fatal:
            fail(f"{path}:{n}: cause {pm['cause']!r} but chain ends in "
                 f"{chain[-1]['ev']!r} (want {fatal!r})")
    print(f"check_telemetry: {path}: {len(lines)} post-mortem(s), "
          f"chains chronological and cause-consistent")


def main(argv):
    args = [a for a in argv if a != "--expect-loss"]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check_timeline(args[0])
    check_postmortems(args[1], expect_loss="--expect-loss" in argv)
    print("check_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
