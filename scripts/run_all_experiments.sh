#!/usr/bin/env bash
# Regenerate every table and figure of the paper and store the outputs
# under results/. Pass --quick for a fast smoke sweep (default here is
# the paper-scale --full run; budget ~1 h on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:---full}"
TRIALS="${2:-100}"
OUT=results
mkdir -p "$OUT"

cargo build --release -p farm-experiments --bins

run() {
    local name="$1"; shift
    echo "=== $name $* ==="
    local t0=$SECONDS
    cargo run --release -q -p farm-experiments --bin "$name" -- "$@" \
        | tee "$OUT/$name.txt"
    echo "($name took $((SECONDS - t0)) s)"
}

run table1
run table2 "$MODE"
run fig3 "$MODE" --trials "$TRIALS"
run fig4 "$MODE" --trials "$TRIALS"
run fig5 "$MODE" --trials "$TRIALS"
run fig6 "$MODE"
run fig7 "$MODE" --trials "$TRIALS"
run fig8 "$MODE" --trials "$TRIALS"
run redirection "$MODE" --trials "$TRIALS"
run ablations "$MODE" --trials "$TRIALS"
run latent "$MODE" --trials "$TRIALS"

echo "all outputs in $OUT/"
