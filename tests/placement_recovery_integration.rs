//! Integration between the placement layer and the recovery engine:
//! targets chosen after failures must respect RUSH candidate semantics
//! and the §2.3 constraints, and batch growth must interact correctly
//! with live placement.

use farm_core::prelude::*;
use farm_core::Simulation;
use farm_disk::failure::Hazard;
use farm_placement::{ClusterMap, DiskId, Rush};

fn small() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 8 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 128 * GIB,
        ..SystemConfig::default()
    }
}

#[test]
fn rebuilt_blocks_never_share_a_disk_with_buddies() {
    let mut sim = Simulation::new(
        SystemConfig {
            hazard: Hazard::table1().with_multiplier(6.0),
            ..small()
        },
        1,
    );
    let m = sim.run();
    assert!(m.rebuilds_completed > 0, "want rebuilds to inspect");
    for g in 0..sim.layout().n_groups() {
        if sim.layout().is_dead(g) {
            continue;
        }
        let homes = sim.layout().homes_of(g);
        let distinct: std::collections::HashSet<_> = homes.iter().collect();
        assert_eq!(
            distinct.len(),
            homes.len(),
            "group {g} buddies share a disk"
        );
    }
}

#[test]
fn rebuilt_blocks_live_on_active_disks_with_space_accounted() {
    let mut sim = Simulation::new(
        SystemConfig {
            hazard: Hazard::table1().with_multiplier(6.0),
            ..small()
        },
        2,
    );
    let _ = sim.run();
    for i in 0..sim.n_disks() {
        let d = DiskId(i);
        let disk = sim.disk(d);
        if disk.is_active() {
            assert!(
                disk.used <= disk.capacity,
                "disk {i} over capacity: {} > {}",
                disk.used,
                disk.capacity
            );
        }
    }
}

#[test]
fn candidate_walk_matches_raw_rush_for_untouched_groups() {
    // Groups that never lost a block must still sit exactly where RUSH
    // put them ("replicas are not moved once placed", §2.3) — unless
    // capacity skipping rerouted them at init, which cannot happen in a
    // fresh 40%-utilized system.
    let sim = Simulation::new(small(), 3);
    let rush = Rush::new(farm_des::rng::SeedFactory::new(3).child(0xFA).master());
    let map = ClusterMap::uniform(sim.cluster_map().n_disks());
    let n = sim.config().scheme.n as usize;
    for g in (0..sim.layout().n_groups()).step_by(37) {
        let expected = rush.place(&map, g as u64, n);
        assert_eq!(
            sim.layout().homes_of(g),
            &expected[..],
            "group {g} moved without a failure"
        );
    }
}

#[test]
fn batch_growth_extends_candidate_space() {
    // After a replacement batch joins, recovery targets may come from the
    // new cluster; placement and layout must agree about disk ids.
    let cfg = SystemConfig {
        replacement: ReplacementPolicy::at_fraction(0.02),
        hazard: Hazard::table1().with_multiplier(8.0),
        ..small()
    };
    let mut sim = Simulation::new(cfg, 4);
    let m = sim.run();
    assert!(m.batches_added > 0);
    let map_disks = sim.cluster_map().n_disks();
    assert_eq!(
        map_disks,
        sim.n_disks(),
        "placement map and disk table must stay in sync under FARM"
    );
    // Some blocks should have migrated onto batch disks.
    let first_batch = sim.cluster_map().cluster(1).first;
    let on_batch: usize = (first_batch..map_disks)
        .map(|i| sim.layout().blocks_on(DiskId(i)).len())
        .sum();
    assert!(on_batch > 0, "no blocks on the replacement batch");
}

#[test]
fn spares_are_outside_the_placement_population() {
    let cfg = SystemConfig {
        recovery: RecoveryPolicy::SingleSpare,
        hazard: Hazard::table1().with_multiplier(4.0),
        ..small()
    };
    let mut sim = Simulation::new(cfg, 5);
    let m = sim.run();
    if m.disk_failures > 0 {
        assert!(sim.n_disks() > sim.cluster_map().n_disks());
        // Population snapshot only covers the placement population.
        assert_eq!(
            sim.population_utilization().count(),
            sim.cluster_map().n_disks() as usize
        );
    }
}

#[test]
fn migration_respects_capacity_and_buddy_constraints() {
    let cfg = SystemConfig {
        replacement: ReplacementPolicy::at_fraction(0.02),
        hazard: Hazard::table1().with_multiplier(8.0),
        ..small()
    };
    let mut sim = Simulation::new(cfg, 6);
    let _ = sim.run();
    for g in 0..sim.layout().n_groups() {
        if sim.layout().is_dead(g) {
            continue;
        }
        let homes = sim.layout().homes_of(g);
        let distinct: std::collections::HashSet<_> = homes.iter().collect();
        assert_eq!(
            distinct.len(),
            homes.len(),
            "migration co-located group {g}"
        );
    }
    for i in 0..sim.n_disks() {
        let disk = sim.disk(DiskId(i));
        if disk.is_active() {
            assert!(disk.used <= disk.capacity);
        }
    }
}
