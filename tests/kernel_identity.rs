//! Cross-kernel byte-identity of the erasure pipeline.
//!
//! The GF(2^8) region kernels (scalar SWAR, SSSE3, AVX2) are selected at
//! runtime, so a dispatch bug would silently change simulation results
//! depending on the host CPU. This test pins the contract: `encode`,
//! `verify` and `reconstruct` must produce byte-identical output under
//! every kernel the host supports.
//!
//! The CI kernel matrix runs this binary once per `FARM_GF_KERNEL`
//! value; the single test below first asserts that the startup-selected
//! kernel honours that variable, then switches kernels explicitly via
//! `set_active`. Everything lives in one `#[test]` because the active
//! kernel is process-global state — parallel test threads flipping it
//! would race.

use farm_erasure::gf256::kernel::{self, Kernel};
use farm_erasure::{ReedSolomon, Scheme};

fn make_shards(m: usize, len: usize) -> Vec<Vec<u8>> {
    (0..m)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 131 + j * 29 + (j >> 3)) & 0xff) as u8)
                .collect()
        })
        .collect()
}

#[test]
fn erasure_pipeline_is_byte_identical_across_kernels() {
    // --- startup dispatch honours FARM_GF_KERNEL (the CI matrix sets
    // it; locally it is usually unset and this block is a no-op).
    let startup = kernel::active();
    if let Ok(raw) = std::env::var("FARM_GF_KERNEL") {
        if let Some(want) = Kernel::parse(&raw) {
            if want.supported() {
                assert_eq!(
                    startup, want,
                    "FARM_GF_KERNEL={raw} but startup kernel is {startup}"
                );
            } else {
                // Unsupported request must fall back to autodetection,
                // not crash — reaching this line at all proves that.
                assert_eq!(startup, Kernel::detect());
            }
        }
    }

    let supported: Vec<Kernel> = Kernel::ALL.into_iter().filter(|k| k.supported()).collect();
    assert!(supported.contains(&Kernel::Scalar));

    // Shard lengths that exercise the vector body, the SWAR word loop
    // and the per-byte tail, including lengths below one vector.
    for &len in &[1usize, 13, 64, 1000, 4096 + 7] {
        for scheme in Scheme::figure3_schemes() {
            let m = scheme.m as usize;
            let n = scheme.n as usize;
            let k_tol = scheme.fault_tolerance() as usize;
            let codec = scheme.codec();
            let data = make_shards(m, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

            // Reference pass under the portable scalar kernel.
            kernel::set_active(Kernel::Scalar);
            let ref_parity = codec.encode(&refs);
            let full: Vec<Vec<u8>> = data.iter().cloned().chain(ref_parity.clone()).collect();
            let mut ref_working: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for slot in ref_working.iter_mut().take(k_tol) {
                *slot = None;
            }
            assert!(codec.reconstruct(&mut ref_working));

            for &k in &supported {
                kernel::set_active(k);
                let parity = codec.encode(&refs);
                assert_eq!(
                    parity, ref_parity,
                    "encode differs under {k} ({scheme:?}, len {len})"
                );

                // Worst case: lose the first k_tol (data) shards.
                let mut working: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for slot in working.iter_mut().take(k_tol) {
                    *slot = None;
                }
                assert!(
                    codec.reconstruct(&mut working),
                    "reconstruct failed under {k} ({scheme:?}, len {len})"
                );
                for (col, (got, want)) in working.iter().zip(&ref_working).enumerate() {
                    assert_eq!(
                        got, want,
                        "reconstruct differs under {k} ({scheme:?}, len {len}, column {col})"
                    );
                }

                // Also lose a parity shard where tolerance allows it, so
                // the parity-rebuild path is covered per kernel too.
                if k_tol >= 1 && n > m {
                    let mut working: Vec<Option<Vec<u8>>> =
                        full.iter().cloned().map(Some).collect();
                    working[n - 1] = None;
                    assert!(codec.reconstruct(&mut working));
                    assert_eq!(
                        working[n - 1].as_ref().unwrap(),
                        &full[n - 1],
                        "parity rebuild differs under {k} ({scheme:?}, len {len})"
                    );
                }
            }
        }
    }

    // --- ReedSolomon directly: `verify` recomputes parity through the
    // kernel path, so it must accept scalar-produced parity under every
    // kernel (and reject corrupted parity).
    for &(m, n) in &[(4usize, 6usize), (8, 10), (11, 12)] {
        let rs = ReedSolomon::new(m, n);
        let data = make_shards(m, 4096 + 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        kernel::set_active(Kernel::Scalar);
        let parity = rs.encode(&refs).unwrap();
        for &k in &supported {
            kernel::set_active(k);
            let mut shards: Vec<&[u8]> = refs.clone();
            let parity_refs: Vec<&[u8]> = parity.iter().map(|p| p.as_slice()).collect();
            shards.extend(parity_refs);
            assert_eq!(
                rs.verify(&shards),
                Ok(true),
                "verify rejected good parity under {k} ({m}/{n})"
            );
            let mut corrupted = parity.clone();
            corrupted[0][0] ^= 0x01;
            let mut bad: Vec<&[u8]> = refs.clone();
            bad.extend(corrupted.iter().map(|p| p.as_slice()));
            assert_eq!(
                rs.verify(&bad),
                Ok(false),
                "verify accepted corrupt parity under {k} ({m}/{n})"
            );
        }
    }

    // Restore the startup selection for any later code in this process.
    kernel::set_active(startup);
}
