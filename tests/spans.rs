//! Recovery-span tracing contracts: spans never change results, the
//! `farm-spans-v1` artifact is deterministic across thread counts and
//! internally consistent (monotone phase timestamps, telescoping phase
//! durations), the Chrome trace export is well-formed JSON, and every
//! data-loss post-mortem carries a critical path whose phase durations
//! sum to the fatal vulnerability window.

use farm_bench::json::Json;
use farm_core::prelude::*;
use farm_disk::latent::LatentConfig;
use farm_obs::{ObsOptions, SpanFormat, SpansSpec};

fn tiny() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

/// Two-way mirroring with unscrubbed latent sector errors loses data
/// reliably — exercises every span outcome including the loss paths.
fn lossy() -> SystemConfig {
    SystemConfig {
        scheme: Scheme::two_way_mirroring(),
        group_user_bytes: 10 * GIB,
        latent: Some(LatentConfig {
            defects_per_drive_year: 1.0,
            scrub_interval: None,
        }),
        ..tiny()
    }
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("farm-spans-{tag}-{}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

fn spans_obs(path: &str, format: SpanFormat) -> ObsOptions {
    ObsOptions {
        spans: Some(SpansSpec {
            path: path.to_string(),
            format,
        }),
        ..ObsOptions::off()
    }
}

fn read_and_remove(p: &str) -> String {
    let s = std::fs::read_to_string(p).expect("artifact written");
    std::fs::remove_file(p).ok();
    s
}

#[test]
fn span_recording_never_changes_the_lossy_summary() {
    let cfg = lossy();
    let path = tmp_path("golden.jsonl");
    let (base, _) = run_trials_observed(&cfg, 7, 6, TrialMode::Full, 1, &ObsOptions::off());
    let (on, _) = run_trials_observed(
        &cfg,
        7,
        6,
        TrialMode::Full,
        1,
        &spans_obs(&path, SpanFormat::Jsonl),
    );
    std::fs::remove_file(&path).ok();
    assert_eq!(base.trials(), on.trials());
    assert_eq!(base.p_loss.successes, on.p_loss.successes);
    assert_eq!(base.failures.mean().to_bits(), on.failures.mean().to_bits());
    assert_eq!(base.events.mean().to_bits(), on.events.mean().to_bits());
    // Compact histogram forms are lossless: string equality is bit
    // equality of the whole distribution, including the new phase
    // histograms (recorded unconditionally, spans on or off).
    assert_eq!(
        base.vulnerability.to_compact(),
        on.vulnerability.to_compact()
    );
    assert_eq!(base.queue_delay.to_compact(), on.queue_delay.to_compact());
    assert_eq!(base.detect_lag.to_compact(), on.detect_lag.to_compact());
    assert_eq!(base.transfer.to_compact(), on.transfer.to_compact());
}

#[test]
fn spans_artifact_is_byte_identical_across_thread_counts() {
    let cfg = lossy();
    let (p_seq, p_par) = (tmp_path("seq.jsonl"), tmp_path("par.jsonl"));
    let (a, _) = run_trials_observed(
        &cfg,
        42,
        8,
        TrialMode::Full,
        1,
        &spans_obs(&p_seq, SpanFormat::Jsonl),
    );
    let (b, _) = run_trials_observed(
        &cfg,
        42,
        8,
        TrialMode::Full,
        4,
        &spans_obs(&p_par, SpanFormat::Jsonl),
    );
    assert_eq!(a.p_loss.successes, b.p_loss.successes);
    let (seq, par) = (read_and_remove(&p_seq), read_and_remove(&p_par));
    assert!(!seq.is_empty(), "lossy config produces spans");
    assert_eq!(seq, par, "spans artifact differs by thread count");

    // Every row is schema-conformant and internally consistent.
    let outcomes = ["rebuilt", "loss_disk", "loss_latent", "truncated"];
    let (mut spans, mut bw) = (0u64, 0u64);
    for line in seq.lines() {
        let row = Json::parse(line).expect("span row parses");
        let num = |k: &str| row.get(k).and_then(Json::as_f64);
        match row.get("schema").and_then(Json::as_str) {
            Some("farm-spans-v1") => {
                spans += 1;
                let outcome = row.get("outcome").and_then(Json::as_str).unwrap();
                assert!(outcomes.contains(&outcome), "{line}");
                // Phase timestamps are monotone where present (a null
                // means the span never reached that phase). `t_start`
                // is the *planned* transfer start, so a span that dies
                // while queued legitimately has t_end < t_start; t_end
                // must only follow t_start once a transfer actually ran.
                let t_fail = num("t_fail").expect("t_fail");
                let t_end = num("t_end").expect("t_end");
                let mut last = t_fail;
                for k in ["t_detect", "t_start"] {
                    if let Some(t) = num(k) {
                        assert!(t >= last, "{k} not monotone: {line}");
                        last = t;
                    }
                }
                assert!(t_end >= t_fail, "t_end precedes t_fail: {line}");
                if let Some(td) = num("t_detect") {
                    assert!(t_end >= td, "t_end precedes t_detect: {line}");
                }
                if num("transfer_secs").unwrap() > 0.0 {
                    if let Some(ts) = num("t_start") {
                        assert!(t_end >= ts, "transfer ran before t_start: {line}");
                    }
                }
                // Phase durations telescope to the whole window.
                let sum = num("detect_secs").unwrap()
                    + num("queue_secs").unwrap()
                    + num("transfer_secs").unwrap();
                let window = t_end - t_fail;
                assert!(
                    (sum - window).abs() <= 1e-6 * window.max(1.0),
                    "phases don't telescope: {line}"
                );
                assert!(num("bytes").unwrap() >= 0.0, "{line}");
            }
            Some("farm-spans-bw-v1") => {
                bw += 1;
                let res = row.get("resource").and_then(Json::as_str).unwrap();
                assert!(res == "disk" || res == "group", "{line}");
                assert!(num("busy_secs").unwrap() >= 0.0, "{line}");
                assert!(num("bytes_read").unwrap() >= 0.0, "{line}");
                assert!(num("bytes_written").unwrap() >= 0.0, "{line}");
            }
            other => panic!("unknown schema {other:?}: {line}"),
        }
    }
    assert!(spans > 0, "span rows present");
    assert!(bw > 0, "bandwidth-attribution rows present");
}

#[test]
fn chrome_trace_export_is_well_formed_json() {
    let cfg = tiny();
    let path = tmp_path("trace.json");
    run_trials_observed(
        &cfg,
        2004,
        3,
        TrialMode::Full,
        1,
        &spans_obs(&path, SpanFormat::Chrome),
    );
    let body = read_and_remove(&path);
    let doc = Json::parse(&body).expect("chrome trace parses as one JSON document");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(ev.get("pid").and_then(Json::as_f64).is_some());
        assert!(ev.get("tid").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn critical_path_sums_to_the_fatal_window() {
    // Every data-loss post-mortem gains a critical-path breakdown when
    // spans are on, and its phase durations sum exactly to the fatal
    // vulnerability window (first failure -> loss instant).
    let cfg = lossy();
    let pm = tmp_path("cp-pm.jsonl");
    let sp = tmp_path("cp-spans.jsonl");
    let obs = ObsOptions {
        postmortem: Some(pm.clone()),
        ..spans_obs(&sp, SpanFormat::Jsonl)
    };
    let (summary, _) = run_trials_observed(&cfg, 42, 8, TrialMode::Full, 2, &obs);
    std::fs::remove_file(&sp).ok();
    let body = read_and_remove(&pm);
    assert!(summary.p_loss.successes > 0, "lossy config must lose data");
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "losses must produce post-mortems");
    for line in &lines {
        let doc = Json::parse(line).expect("post-mortem parses");
        let cp = doc
            .get("critical_path")
            .unwrap_or_else(|| panic!("post-mortem lacks critical path: {line}"));
        let num = |k: &str| cp.get(k).and_then(Json::as_f64).expect(k);
        let window = num("window_secs");
        let (d, q, t) = (num("detect_secs"), num("queue_secs"), num("transfer_secs"));
        assert!(window > 0.0, "{line}");
        assert!(d >= 0.0 && q >= 0.0 && t >= 0.0, "{line}");
        assert!(
            (d + q + t - window).abs() <= 1e-6 * window.max(1.0),
            "critical path doesn't telescope: {line}"
        );
        let dominant = cp.get("dominant").and_then(Json::as_str).expect("dominant");
        assert!(
            ["detect", "queue", "transfer"].contains(&dominant),
            "{line}"
        );
        // `dominant` really is the largest contributor.
        let max = d.max(q).max(t);
        let named = match dominant {
            "detect" => d,
            "queue" => q,
            _ => t,
        };
        assert_eq!(named.to_bits(), max.to_bits(), "{line}");
    }
}
