//! Workspace-recycling determinism contract: a trial run in a recycled
//! [`TrialWorkspace`] is bit-for-bit identical to one run in a freshly
//! constructed [`Simulation`]. This is what makes per-worker workspace
//! reuse a pure throughput optimization — every counter, every f64 (by
//! bits) and every histogram must match, across all six redundancy
//! schemes of Figure 3, both event-queue kinds, and config changes
//! between trials on the same workspace.

use farm_core::prelude::*;
use farm_des::rng::derive_seed;
use farm_disk::latent::LatentConfig;
use std::sync::Arc;

fn base() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

/// Two-way mirroring with unscrubbed latent sector errors loses data
/// reliably, exercising the loss and latent-RNG paths.
fn lossy() -> SystemConfig {
    SystemConfig {
        scheme: Scheme::two_way_mirroring(),
        group_user_bytes: 10 * GIB,
        latent: Some(LatentConfig {
            defects_per_drive_year: 1.0,
            scrub_interval: None,
        }),
        ..base()
    }
}

/// Fast-failing drives with batch replacement and erasure coding:
/// spares, migration and heavy event traffic.
fn stressed(queue: QueueKind) -> SystemConfig {
    SystemConfig {
        scheme: Scheme::new(4, 6),
        hazard: farm_disk::failure::Hazard::table1().with_multiplier(4.0),
        replacement: ReplacementPolicy::at_fraction(0.04),
        queue,
        ..base()
    }
}

fn assert_metrics_identical(a: &TrialMetrics, b: &TrialMetrics, what: &str) {
    assert_eq!(a.lost_groups, b.lost_groups, "{what}: lost_groups");
    assert_eq!(a.lost_user_bytes, b.lost_user_bytes, "{what}: lost bytes");
    assert_eq!(a.first_loss, b.first_loss, "{what}: first_loss");
    assert_eq!(a.disk_failures, b.disk_failures, "{what}: disk_failures");
    assert_eq!(
        a.rebuilds_completed, b.rebuilds_completed,
        "{what}: rebuilds"
    );
    assert_eq!(a.redirections, b.redirections, "{what}: redirections");
    assert_eq!(
        a.latent_read_errors, b.latent_read_errors,
        "{what}: latent reads"
    );
    assert_eq!(a.migrated_blocks, b.migrated_blocks, "{what}: migrations");
    assert_eq!(a.batches_added, b.batches_added, "{what}: batches");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: events_processed"
    );
    assert_eq!(a.no_targets, b.no_targets, "{what}: no_targets");
    assert_eq!(
        a.max_vulnerability_secs.to_bits(),
        b.max_vulnerability_secs.to_bits(),
        "{what}: max vulnerability"
    );
    assert_eq!(
        a.total_vulnerability_secs.to_bits(),
        b.total_vulnerability_secs.to_bits(),
        "{what}: total vulnerability"
    );
    assert_eq!(
        a.vulnerability.to_compact(),
        b.vulnerability.to_compact(),
        "{what}: vulnerability histogram"
    );
    assert_eq!(
        a.queue_delay.to_compact(),
        b.queue_delay.to_compact(),
        "{what}: queue-delay histogram"
    );
    assert_eq!(
        a.fanout.to_compact(),
        b.fanout.to_compact(),
        "{what}: fan-out histogram"
    );
}

/// Run `trials` on a deliberately dirtied workspace and compare each
/// against a fresh construction, trial by trial.
fn assert_recycled_matches_fresh(cfg: &SystemConfig, master_seed: u64, trials: u64, what: &str) {
    let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
    let mut ws = TrialWorkspace::with_reuse(true);
    // Warm the workspace with an unrelated trial so every compared one
    // is genuinely recycled, never freshly constructed.
    let _ = ws.obtain(&prepared, derive_seed(0xD1B7, 0)).run();
    for t in 0..trials {
        let seed = derive_seed(master_seed, t);
        let recycled = ws.obtain(&prepared, seed).run();
        let fresh = Simulation::new(cfg.clone(), seed).run();
        assert_metrics_identical(&recycled, &fresh, &format!("{what}, trial {t}"));
    }
}

#[test]
fn recycled_trials_match_fresh_for_every_scheme_and_queue() {
    for scheme in Scheme::figure3_schemes() {
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            let cfg = SystemConfig {
                scheme,
                queue,
                ..base()
            };
            assert_recycled_matches_fresh(&cfg, 2004, 2, &format!("{scheme:?} / {queue:?}"));
        }
    }
}

#[test]
fn recycled_trials_match_fresh_under_stress_and_loss() {
    for queue in [QueueKind::Heap, QueueKind::Calendar] {
        assert_recycled_matches_fresh(&stressed(queue), 17, 3, &format!("stressed / {queue:?}"));
    }
    assert_recycled_matches_fresh(&lossy(), 42, 4, "lossy");
}

#[test]
fn recycled_until_loss_matches_fresh() {
    let cfg = lossy();
    let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
    let mut ws = TrialWorkspace::with_reuse(true);
    let _ = ws.obtain(&prepared, derive_seed(1, 0)).run();
    let mut saw_loss = false;
    for t in 0..6 {
        let seed = derive_seed(3, t);
        let recycled = ws.obtain(&prepared, seed).run_until_loss();
        let fresh = Simulation::new(cfg.clone(), seed).run_until_loss();
        assert_metrics_identical(&recycled, &fresh, &format!("until-loss trial {t}"));
        saw_loss |= recycled.lost_data();
    }
    assert!(saw_loss, "lossy config must exercise the loss path");
}

#[test]
fn workspace_reuse_across_configs_matches_fresh() {
    // A workspace recycled across *different* configurations — larger to
    // smaller, smaller to larger, different scheme, different queue —
    // must still equal fresh construction every time.
    let big = SystemConfig {
        total_user_bytes: 4 * TIB,
        ..base()
    };
    let small = SystemConfig {
        total_user_bytes: TIB,
        scheme: Scheme::new(4, 6),
        queue: QueueKind::Calendar,
        ..base()
    };
    let seq = [
        ("big", &big),
        ("big->small", &small),
        ("small->big", &big),
        ("big->small again", &small),
    ];
    let mut ws = TrialWorkspace::with_reuse(true);
    for (i, (what, cfg)) in seq.iter().enumerate() {
        let prepared = Arc::new(PreparedConfig::new((*cfg).clone()));
        let seed = derive_seed(7, i as u64);
        let recycled = ws.obtain(&prepared, seed).run();
        let fresh = Simulation::new((*cfg).clone(), seed).run();
        assert_metrics_identical(&recycled, &fresh, what);
    }
}

#[test]
fn reuse_disabled_workspace_matches_reuse_enabled() {
    // `FARM_WORKSPACE=0` reconstructs per trial; both modes must agree
    // (this is the API-level form of the CI on/off summary diff).
    let cfg = base();
    let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
    let mut on = TrialWorkspace::with_reuse(true);
    let mut off = TrialWorkspace::with_reuse(false);
    for t in 0..3 {
        let seed = derive_seed(11, t);
        let a = on.obtain(&prepared, seed).run();
        let b = off.obtain(&prepared, seed).run();
        assert_metrics_identical(&a, &b, &format!("reuse on vs off, trial {t}"));
    }
}

#[test]
fn recycled_timeline_rows_match_fresh() {
    // Telemetry from a recycled simulation must be bit-identical too:
    // the O(1) gauge aggregates are rebuilt per trial, never carried
    // over. The recorder rows are compared exactly (f64 bits).
    let cfg = lossy();
    let month = farm_des::time::SECONDS_PER_MONTH;
    let duration = cfg.sim_duration().as_secs();
    let mk_timeline = || farm_obs::TimelineRecorder::new(month, duration);

    let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
    let mut ws = TrialWorkspace::with_reuse(true);
    // Dirty the workspace with a *traced-free* plain trial first.
    let _ = ws.obtain(&prepared, derive_seed(5, 0)).run();
    for t in 0..3 {
        let seed = derive_seed(9, t);
        let sim = ws.obtain(&prepared, seed);
        sim.set_timeline(mk_timeline());
        let recycled = sim.run();
        let recycled_rows = sim.take_timeline().expect("timeline attached");

        let mut fresh_sim = Simulation::new(cfg.clone(), seed);
        fresh_sim.set_timeline(mk_timeline());
        let fresh = fresh_sim.run();
        let fresh_rows = fresh_sim.take_timeline().expect("timeline attached");

        assert_metrics_identical(&recycled, &fresh, &format!("timeline trial {t}"));
        assert_eq!(
            recycled_rows.rows(),
            fresh_rows.rows(),
            "trial {t}: recycled timeline rows diverge from fresh"
        );
        assert_eq!(recycled_rows.n_samples(), fresh_rows.n_samples());
    }
}
