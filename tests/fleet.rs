//! Fleet orchestration, end to end: the golden contract that a
//! fleet-merged campaign is **bit-identical** to a single-process run
//! over the same seed set — for any worker count, through the real
//! coordinator/worker processes, and across a killed-and-respawned
//! worker — plus exact-coverage accounting on resume (no seed gaps, no
//! double counting).

use farm_core::montecarlo::{n_chunks, run_trial_chunks_observed, run_trials_observed};
use farm_core::prelude::*;
use farm_experiments::cli::Options;
use farm_experiments::fleet::{self, campaign_fingerprint, fleet_config, load_result, plan_ranges};
use farm_obs::{Json, ObsOptions};
use std::path::PathBuf;
use std::process::Command;

const TRIALS: u64 = 16;
const SEED: u64 = 7;
const SCALE: f64 = 1.0 / 64.0;

fn opts() -> Options {
    let mut o = Options::quick_default();
    o.trials = TRIALS;
    o.seed = SEED;
    o.scale = SCALE;
    o.threads = 1;
    o
}

fn fleet_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("farm-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single-process reference summary, compact form.
fn single_process_compact() -> String {
    let o = opts();
    let (summary, _) = run_trials_observed(
        &fleet_config(&o),
        SEED,
        TRIALS,
        TrialMode::UntilLoss,
        1,
        &ObsOptions::off(),
    );
    summary.to_compact()
}

/// Golden merge test: partition the campaign as a 2-worker and a
/// 4-worker fleet would, run every range through the worker entry
/// point (with different thread counts, even), fold, and demand the
/// exact bytes of the single-process summary.
#[test]
fn fleet_merge_matches_single_process_bit_for_bit() {
    let o = opts();
    let cfg = fleet_config(&o);
    let reference = single_process_compact();
    for (workers, threads) in [(2usize, 2usize), (4, 1)] {
        let mut chunks = Vec::new();
        for (lo, hi) in plan_ranges(TRIALS, workers) {
            chunks.extend(run_trial_chunks_observed(
                &cfg,
                SEED,
                TRIALS,
                lo,
                hi,
                TrialMode::UntilLoss,
                threads,
                &ObsOptions::off(),
            ));
        }
        let merged = farm_core::montecarlo::fold_chunk_summaries(chunks, n_chunks(TRIALS))
            .expect("exact coverage");
        assert_eq!(
            merged.to_compact(),
            reference,
            "{workers}-worker fleet merge diverged from the single-process run"
        );
    }
}

fn fleet_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fleet"))
}

fn run_coordinator(dir: &PathBuf, workers: usize) -> std::process::Output {
    fleet_bin()
        .args([
            "--workers",
            &workers.to_string(),
            "--no-dashboard",
            "--no-worker-http",
        ])
        .args(["--trials", &TRIALS.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--scale", &SCALE.to_string()])
        .args(["--threads", "1"])
        .arg("--fleet")
        .arg(dir)
        .env_remove("FARM_FLEET_CRASH_RANGE")
        .output()
        .expect("spawn fleet coordinator")
}

/// The real processes: `--single` and a 2-worker coordinator produce
/// byte-identical summary files.
#[test]
fn fleet_binary_matches_single_binary() {
    let dir = fleet_dir("bin");
    let single = fleet_bin()
        .args(["--single", "--trials", &TRIALS.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--scale", &SCALE.to_string()])
        .args(["--threads", "1"])
        .arg("--fleet")
        .arg(&dir)
        .output()
        .expect("spawn fleet --single");
    assert!(single.status.success(), "--single failed: {single:?}");
    let out = run_coordinator(&dir, 2);
    assert!(out.status.success(), "coordinator failed: {out:?}");
    let fleet_sum = std::fs::read_to_string(dir.join("fleet-summary.txt")).unwrap();
    let single_sum = std::fs::read_to_string(dir.join("fleet-summary-single.txt")).unwrap();
    assert_eq!(fleet_sum, single_sum);
    assert_eq!(fleet_sum.trim(), single_process_compact());

    // The merged snapshot is valid fleet-status-v1 with consistent
    // totals: merged trials == sum over workers.
    let snap = std::fs::read_to_string(dir.join("fleet-status.json")).unwrap();
    let doc = Json::parse(&snap).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("fleet-status-v1")
    );
    let merged = doc.get("trials_done").and_then(Json::as_u64).unwrap();
    let by_worker: u64 = doc
        .get("workers")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|w| w.get("trials_done").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(merged, TRIALS);
    assert_eq!(merged, by_worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-one-worker resume: the crash hook aborts worker 0 mid-range on
/// its first attempt (no checkpoint — a SIGKILL stand-in). The
/// coordinator must respawn it and the final summary must still be the
/// single-process bytes, with checkpoints covering every chunk exactly
/// once.
#[test]
fn killed_worker_resumes_without_gaps_or_double_counts() {
    let dir = fleet_dir("crash");
    let out = fleet_bin()
        .args(["--workers", "2", "--no-dashboard", "--no-worker-http"])
        .args(["--trials", &TRIALS.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--scale", &SCALE.to_string()])
        .args(["--threads", "1"])
        .arg("--fleet")
        .arg(&dir)
        .env("FARM_FLEET_CRASH_RANGE", "0:1")
        .output()
        .expect("spawn fleet coordinator");
    assert!(out.status.success(), "coordinator failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("died without a checkpoint; respawning"),
        "expected a respawn in:\n{stderr}"
    );

    let fleet_sum = std::fs::read_to_string(dir.join("fleet-summary.txt")).unwrap();
    assert_eq!(fleet_sum.trim(), single_process_compact());

    // Exact coverage straight from the checkpoints: every chunk of the
    // campaign present exactly once across the range files.
    let o = opts();
    let fp = campaign_fingerprint(&fleet_config(&o), SEED, TRIALS, TrialMode::UntilLoss);
    let mut seen = Vec::new();
    for (lo, hi) in plan_ranges(TRIALS, 2) {
        let chunks = load_result(&dir, fp, lo, hi).expect("checkpoint valid after resume");
        seen.extend(chunks.iter().map(|&(c, _)| c));
    }
    seen.sort_unstable();
    let want: Vec<u64> = (0..n_chunks(TRIALS)).collect();
    assert_eq!(seen, want, "seed-range coverage broken after resume");

    // The snapshot records the respawn: worker 0 took two attempts.
    let snap = std::fs::read_to_string(dir.join("fleet-status.json")).unwrap();
    let doc = Json::parse(&snap).unwrap();
    let workers = doc.get("workers").and_then(Json::as_array).unwrap();
    assert_eq!(
        workers[0].get("attempts").and_then(Json::as_u64),
        Some(2),
        "crashed worker should have respawned once"
    );
    assert_eq!(workers[1].get("attempts").and_then(Json::as_u64), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator restart: ranges that already have a valid checkpoint
/// are not re-dispatched (attempts stays 0), in-flight ranges run, and
/// the merged bytes are unchanged — no double counting.
#[test]
fn coordinator_restart_skips_checkpointed_ranges() {
    let dir = fleet_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();
    // First "incarnation": only worker 0's range finishes (run it
    // directly in worker mode); the coordinator then "restarts".
    let ranges = plan_ranges(TRIALS, 2);
    let (lo, hi) = ranges[0];
    let out = fleet_bin()
        .args(["--worker", "--range", &format!("{lo}:{hi}")])
        .args(["--trials", &TRIALS.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--scale", &SCALE.to_string()])
        .args(["--threads", "1"])
        .arg("--fleet")
        .arg(&dir)
        .output()
        .expect("spawn fleet worker");
    assert!(out.status.success(), "worker failed: {out:?}");

    let out = run_coordinator(&dir, 2);
    assert!(out.status.success(), "coordinator failed: {out:?}");
    let fleet_sum = std::fs::read_to_string(dir.join("fleet-summary.txt")).unwrap();
    assert_eq!(fleet_sum.trim(), single_process_compact());

    let snap = std::fs::read_to_string(dir.join("fleet-status.json")).unwrap();
    let doc = Json::parse(&snap).unwrap();
    let workers = doc.get("workers").and_then(Json::as_array).unwrap();
    // Checkpointed range: never spawned by the restarted coordinator.
    assert_eq!(workers[0].get("attempts").and_then(Json::as_u64), Some(0));
    assert_eq!(workers[0].get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(workers[1].get("attempts").and_then(Json::as_u64), Some(1));
    // And the totals still add up: nothing ran twice.
    assert_eq!(doc.get("trials_done").and_then(Json::as_u64), Some(TRIALS));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stale checkpoint from a *different* campaign (wrong fingerprint)
/// must be ignored, not merged.
#[test]
fn stale_checkpoint_from_other_campaign_is_ignored() {
    let o = opts();
    let cfg = fleet_config(&o);
    let fp = campaign_fingerprint(&cfg, SEED, TRIALS, TrialMode::UntilLoss);
    let other = campaign_fingerprint(&cfg, SEED + 1, TRIALS, TrialMode::UntilLoss);
    let dir = fleet_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    let chunks = vec![(0u64, McSummary::new())];
    fleet::write_result(&dir, other, 0, 1, &chunks).unwrap();
    assert!(load_result(&dir, other, 0, 1).is_some());
    assert!(load_result(&dir, fp, 0, 1).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
