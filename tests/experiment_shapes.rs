//! Shape tests for the experiment harness: at reduced scale, each
//! figure's qualitative finding must already be visible in the rows the
//! harness produces (who wins, monotonicity, orderings) — the criteria
//! EXPERIMENTS.md tracks at full scale.

use farm_experiments::cli::Options;
use farm_experiments::{fig3, fig4, fig5, fig6, fig7, fig8, redirection, tables};

/// Enough scale/trials for direction, small enough for CI (~seconds per
/// experiment).
fn opts() -> Options {
    Options {
        trials: 12,
        seed: 2004,
        scale: 1.0 / 16.0,
        threads: farm_core::montecarlo::default_threads(),
        ..Options::quick_default()
    }
}

#[test]
fn fig3_farm_never_loses_more_than_raid() {
    let mut o = opts();
    o.trials = 8;
    let rows = fig3::run(&o);
    assert_eq!(rows.len(), 12);
    let mut farm_total = 0.0;
    let mut raid_total = 0.0;
    for r in &rows {
        farm_total += r.with_farm.value();
        raid_total += r.without_farm.value();
    }
    assert!(
        raid_total >= farm_total,
        "summed P(loss): RAID {raid_total} vs FARM {farm_total}"
    );
}

#[test]
fn fig4_latency_monotonicity_for_small_groups() {
    let mut o = opts();
    o.trials = 16;
    let rows = fig4::run(&o);
    // For the smallest group size, an hour of latency must not beat
    // instant detection.
    let p = |gib: u64, min: f64| {
        rows.iter()
            .find(|r| r.group_gib == gib && r.latency_minutes == min)
            .unwrap()
            .p_loss
            .value()
    };
    assert!(
        p(1, 60.0) >= p(1, 0.0),
        "1 GiB: 60 min {} vs 0 min {}",
        p(1, 60.0),
        p(1, 0.0)
    );
    // Small groups are more latency-sensitive than large ones (§3.3):
    // compare the *ratio-normalized* sensitivity via raw deltas.
    let small_delta = p(1, 60.0) - p(1, 0.0);
    let large_delta = p(100, 60.0) - p(100, 0.0);
    assert!(
        small_delta >= large_delta - 0.1,
        "1 GiB delta {small_delta} vs 100 GiB delta {large_delta}"
    );
}

#[test]
fn fig5_bandwidth_helps_raid_more() {
    let mut o = opts();
    o.trials = 16;
    let rows = fig5::run(&o);
    let p = |farm: bool, gib: u64, bw: u64| {
        rows.iter()
            .find(|r| r.with_farm == farm && r.group_gib == gib && r.bandwidth_mib == bw)
            .unwrap()
            .p_loss
            .value()
    };
    // Without FARM, 8 -> 40 MiB/s must help.
    assert!(p(false, 1, 40) <= p(false, 1, 8));
    // FARM at any bandwidth beats (or ties) RAID at the same bandwidth.
    for &bw in &fig5::BANDWIDTHS_MIB {
        assert!(
            p(true, 1, bw) <= p(false, 1, bw),
            "bw {bw}: FARM {} vs RAID {}",
            p(true, 1, bw),
            p(false, 1, bw)
        );
    }
}

#[test]
fn fig6_utilization_sigma_orders_by_group_size() {
    let rows = fig6::run(&opts());
    let sigma = |gib: u64| {
        rows.iter()
            .find(|r| r.group_gib == gib)
            .unwrap()
            .final_state
            .std_dev()
    };
    assert!(
        sigma(1) < sigma(50),
        "σ(1 GiB) {} must be below σ(50 GiB) {}",
        sigma(1),
        sigma(50)
    );
}

#[test]
fn fig7_replacement_timing_is_a_minor_effect() {
    let mut o = opts();
    o.trials = 10;
    let rows = fig7::run(&o);
    assert_eq!(rows.len(), 4);
    // The cohort effect is invisible at these batch sizes: the spread of
    // P(loss) across thresholds stays within the CI noise band.
    let values: Vec<f64> = rows.iter().map(|r| r.p_loss.value()).collect();
    let max = values.iter().cloned().fold(0.0, f64::max);
    let min = values.iter().cloned().fold(1.0, f64::min);
    let widest_ci = rows
        .iter()
        .map(|r| r.p_loss.ci95_half_width())
        .fold(0.0, f64::max);
    assert!(
        max - min <= 2.0 * widest_ci + 0.15,
        "replacement timing moved P(loss) by {} (CI half-width {widest_ci})",
        max - min
    );
}

#[test]
fn fig8_loss_grows_with_scale_for_weak_schemes() {
    let mut o = opts();
    o.trials = 12;
    o.scale = 1.0 / 8.0;
    let rows = fig8::run(&o);
    let p = |pib: f64, scheme: farm_erasure::Scheme, mult: f64| {
        rows.iter()
            .find(|r| r.capacity_pib == pib && r.scheme == scheme && r.hazard_multiplier == mult)
            .unwrap()
            .p_loss
            .value()
    };
    let s12 = farm_erasure::Scheme::new(1, 2);
    assert!(
        p(5.0, s12, 1.0) >= p(0.1, s12, 1.0),
        "1/2 at 5 PiB ({}) vs 0.1 PiB ({})",
        p(5.0, s12, 1.0),
        p(0.1, s12, 1.0)
    );
    // Doubling failure rates must not reduce loss at the largest scale.
    assert!(p(5.0, s12, 2.0) >= p(5.0, s12, 1.0));
    // Double-fault-tolerant schemes stay near zero everywhere.
    let s8 = farm_erasure::Scheme::new(8, 10);
    for &pib in &fig8::CAPACITIES_PIB {
        assert!(
            p(pib, s8, 1.0) <= 0.25,
            "8/10 at {pib} PiB lost {}",
            p(pib, s8, 1.0)
        );
    }
}

#[test]
fn redirection_stays_below_the_papers_bound() {
    let mut o = opts();
    o.trials = 15;
    let rows = redirection::run(&o);
    for r in &rows {
        assert!(
            r.p_redirection.value() <= 0.30,
            "group {} GiB: redirection in {}% of systems",
            r.group_gib,
            100.0 * r.p_redirection.value()
        );
    }
}

#[test]
fn tables_render() {
    // Smoke: the table binaries' code paths produce sane rows.
    let rows = tables::table1_rows();
    assert_eq!(rows.len(), 4);
    let cfg = farm_core::SystemConfig::default();
    let t2 = tables::table2_rows(&cfg);
    assert!(t2.len() >= 8);
}
