//! The observability layer's core contract: whether tracing, profiling
//! and progress are on or off NEVER changes simulation results. These
//! tests run the same batch with everything off and everything on and
//! require the aggregates to match bit for bit.

use farm_core::prelude::*;
use farm_des::stats::Running;
use farm_obs::{ObsOptions, SpanFormat, SpansSpec, TimelineSpec, TraceSel, TraceSpec};

fn tiny() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

fn assert_running_identical(a: &Running, b: &Running, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{what}: mean");
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: min");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: max");
}

fn assert_summaries_identical(a: &McSummary, b: &McSummary) {
    assert_eq!(a.trials(), b.trials());
    assert_eq!(a.p_loss.successes, b.p_loss.successes);
    assert_eq!(a.p_redirection.successes, b.p_redirection.successes);
    assert_running_identical(&a.failures, &b.failures, "failures");
    assert_running_identical(&a.rebuilds, &b.rebuilds, "rebuilds");
    assert_running_identical(&a.redirections, &b.redirections, "redirections");
    assert_running_identical(&a.lost_groups, &b.lost_groups, "lost_groups");
    assert_running_identical(
        &a.mean_vulnerability,
        &b.mean_vulnerability,
        "mean_vulnerability",
    );
    assert_running_identical(&a.events, &b.events, "events");
    assert_running_identical(&a.no_targets, &b.no_targets, "no_targets");
    // The compact form is lossless, so string equality is bit equality.
    assert_eq!(a.vulnerability.to_compact(), b.vulnerability.to_compact());
    assert_eq!(a.queue_delay.to_compact(), b.queue_delay.to_compact());
    assert_eq!(a.detect_lag.to_compact(), b.detect_lag.to_compact());
    assert_eq!(a.transfer.to_compact(), b.transfer.to_compact());
    assert_eq!(a.fanout.to_compact(), b.fanout.to_compact());
}

#[test]
fn golden_metrics_identical_with_observability_on() {
    let cfg = tiny();
    let trace_path =
        std::env::temp_dir().join(format!("farm-obs-golden-{}.jsonl", std::process::id()));
    let trace_path_s = trace_path.to_str().unwrap().to_string();

    let tmp = std::env::temp_dir();
    let timeline_path = tmp.join(format!("farm-obs-golden-tl-{}.csv", std::process::id()));
    let postmortem_path = tmp.join(format!("farm-obs-golden-pm-{}.jsonl", std::process::id()));
    let spans_path = tmp.join(format!(
        "farm-obs-golden-spans-{}.jsonl",
        std::process::id()
    ));

    let off = ObsOptions::off();
    // Everything on: profiling, a trace of trial 1, progress reporting,
    // the cluster-state timeline, the flight recorder + post-mortems,
    // and recovery-span export.
    let on = ObsOptions {
        progress: Some(true),
        profile: true,
        trace: Some(TraceSpec {
            sel: TraceSel::Trial(1),
            path: Some(trace_path_s.clone()),
        }),
        timeline: Some(TimelineSpec {
            path: timeline_path.to_str().unwrap().to_string(),
            interval_secs: None,
        }),
        postmortem: Some(postmortem_path.to_str().unwrap().to_string()),
        status: None,
        http: None,
        convergence: None,
        target_rel_ci: None,
        spans: Some(SpansSpec {
            path: spans_path.to_str().unwrap().to_string(),
            format: SpanFormat::Jsonl,
        }),
    };

    // Single-threaded so aggregation order is fixed and the comparison
    // can be exact to the bit.
    let (base, no_profile) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &off);
    let (full, profile) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &on);
    assert!(no_profile.is_none());
    assert_summaries_identical(&base, &full);

    // The profiler accounted for exactly the events the metrics counted.
    let p = profile.expect("profiling was on");
    let events = (full.events.mean() * full.trials() as f64).round() as u64;
    assert_eq!(p.total_events(), events);
    assert_eq!(p.queue_depth().count(), events);
    assert!(p.total_nanos() > 0, "profiled events took nonzero time");

    // The timeline was written: a header plus one row per (sample,
    // gauge), all stamped with batch 0.
    let tl = std::fs::read_to_string(&timeline_path).expect("timeline file written");
    std::fs::remove_file(&timeline_path).ok();
    let tl_lines: Vec<&str> = tl.lines().collect();
    assert_eq!(
        tl_lines[0],
        "batch,sample,t_secs,gauge,trials,mean,p10,p90,min,max"
    );
    assert_eq!(tl_lines.len(), 1 + 128 * farm_obs::N_GAUGES);
    assert!(tl_lines[1..].iter().all(|l| l.starts_with("0,")));

    // The post-mortem file exists (possibly empty: this config rarely
    // loses data) and every line is a JSON object for this batch.
    let pm = std::fs::read_to_string(&postmortem_path).expect("post-mortem file written");
    std::fs::remove_file(&postmortem_path).ok();
    for l in pm.lines() {
        assert!(
            l.starts_with("{\"trial\":") && l.ends_with('}'),
            "bad post-mortem: {l}"
        );
    }

    // The spans file was written: `farm-spans-v1` rows plus bandwidth
    // attribution, every line a complete JSON object.
    let sp = std::fs::read_to_string(&spans_path).expect("spans file written");
    std::fs::remove_file(&spans_path).ok();
    assert!(!sp.is_empty(), "this config rebuilds, so spans exist");
    for l in sp.lines() {
        assert!(
            l.starts_with("{\"schema\":\"farm-spans-") && l.ends_with('}'),
            "bad span row: {l}"
        );
    }

    // The trace is valid JSONL for the sampled trial and ends with the
    // batch summary record.
    let body = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "trace has records");
    for l in &lines {
        assert!(l.starts_with("{\"trial\":1,\"t\":"), "bad record: {l}");
        assert!(l.ends_with('}'), "bad record: {l}");
        assert!(l.contains("\"ev\":\""), "bad record: {l}");
    }
    assert!(
        lines.last().unwrap().contains("\"ev\":\"trial_end\""),
        "last record is the trial summary"
    );
    // Trial 1 of this config sees failures, and every failure is
    // eventually detected.
    assert!(lines.iter().any(|l| l.contains("\"ev\":\"failure\"")));
    assert!(lines.iter().any(|l| l.contains("\"ev\":\"detect\"")));
}

#[test]
fn parallel_observed_runs_agree_with_sequential_baseline() {
    let cfg = tiny();
    let off = ObsOptions::off();
    let on = ObsOptions {
        profile: true,
        ..ObsOptions::off()
    };
    let (seq, _) = run_trials_observed(&cfg, 11, 8, TrialMode::Full, 1, &off);
    let (par, profile) = run_trials_observed(&cfg, 11, 8, TrialMode::Full, 4, &on);
    assert_eq!(seq.trials(), par.trials());
    assert_eq!(seq.p_loss.successes, par.p_loss.successes);
    assert!((seq.failures.mean() - par.failures.mean()).abs() < 1e-9);
    // Histogram counts are order-independent even across threads.
    assert_eq!(seq.vulnerability.count(), par.vulnerability.count());
    assert_eq!(seq.fanout.count(), par.fanout.count());
    let p = profile.expect("profiling was on");
    let events = (par.events.mean() * par.trials() as f64).round() as u64;
    assert_eq!(p.total_events(), events);
}

#[test]
fn tracing_a_single_trial_matches_untraced_metrics() {
    // Trace overhead must also not perturb a directly-run simulation.
    let cfg = tiny();
    let plain = run_trial(&cfg, 7, 3, TrialMode::Full);
    let path = std::env::temp_dir().join(format!("farm-obs-single-{}.jsonl", std::process::id()));
    let spec = ObsOptions {
        trace: Some(TraceSpec {
            sel: TraceSel::Trial(3),
            path: Some(path.to_str().unwrap().to_string()),
        }),
        ..ObsOptions::off()
    };
    let (summary, _) = run_trials_observed(&cfg, 7, 4, TrialMode::Full, 1, &spec);
    std::fs::remove_file(&path).ok();
    assert_eq!(summary.trials(), 4);
    // Trial 3's contribution is inside the aggregate; check the whole
    // batch against an untraced one.
    let (untraced, _) = run_trials_observed(&cfg, 7, 4, TrialMode::Full, 1, &ObsOptions::off());
    assert_summaries_identical(&summary, &untraced);
    assert_eq!(
        plain.disk_failures,
        run_trial(&cfg, 7, 3, TrialMode::Full).disk_failures
    );
}
