//! Cluster-state telemetry contracts: timeline shape and determinism,
//! post-mortem causal chains, and loss-only tracing.
//!
//! Everything here rides on the observability invariant pinned by
//! `tests/observability.rs` — telemetry never changes results — and
//! checks the artifacts themselves: row counts, cross-thread file
//! identity, and that a post-mortem's chain ends in the exact event
//! that dropped the group below `m`.

use farm_core::prelude::*;
use farm_disk::latent::LatentConfig;
use farm_obs::{ObsOptions, TimelineSpec, TraceSel, TraceSpec, GAUGES, N_GAUGES};

fn tiny() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

/// Two-way mirroring with unscrubbed latent sector errors loses data
/// reliably — the source of guaranteed post-mortems.
fn lossy() -> SystemConfig {
    SystemConfig {
        scheme: Scheme::two_way_mirroring(),
        group_user_bytes: 10 * GIB,
        latent: Some(LatentConfig {
            defects_per_drive_year: 1.0,
            scrub_interval: None,
        }),
        ..tiny()
    }
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("farm-telemetry-{tag}-{}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

fn obs_with_timeline(path: &str, interval_secs: Option<f64>) -> ObsOptions {
    ObsOptions {
        timeline: Some(TimelineSpec {
            path: path.to_string(),
            interval_secs,
        }),
        ..ObsOptions::off()
    }
}

#[test]
fn timeline_rows_follow_the_documented_schema() {
    let cfg = tiny();
    let path = tmp_path("schema.csv");
    // One sample per simulated month over the 6-year horizon.
    let month = farm_des::time::SECONDS_PER_MONTH;
    let obs = obs_with_timeline(&path, Some(month));
    let n_samples = (cfg.sim_duration().as_secs() / month).floor() as usize;
    assert_eq!(n_samples, 72, "6 years of monthly samples");

    run_trials_observed(&cfg, 2004, 3, TrialMode::Full, 1, &obs);
    let body = std::fs::read_to_string(&path).expect("timeline written");
    std::fs::remove_file(&path).ok();

    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(
        lines[0],
        "batch,sample,t_secs,gauge,trials,mean,p10,p90,min,max"
    );
    // Row count: one line per (sample instant, gauge), every trial
    // contributing duration/interval rows.
    assert_eq!(lines.len(), 1 + n_samples * N_GAUGES);
    for (i, line) in lines[1..].iter().enumerate() {
        let f: Vec<&str> = line.split(',').collect();
        assert_eq!(f.len(), 10, "field count: {line}");
        assert_eq!(f[0], "0", "single batch: {line}");
        // Samples are contiguous, 1-based, with all gauges per sample.
        assert_eq!(f[1].parse::<usize>().unwrap(), i / N_GAUGES + 1, "{line}");
        assert_eq!(f[3], GAUGES[i % N_GAUGES], "{line}");
        assert_eq!(f[4], "3", "every trial pooled: {line}");
        let t: f64 = f[2].parse().unwrap();
        assert!(
            (t - (i / N_GAUGES + 1) as f64 * month).abs() < 1e-6,
            "{line}"
        );
        let (mean, p10, p90) = (
            f[5].parse::<f64>().unwrap(),
            f[6].parse::<f64>().unwrap(),
            f[7].parse::<f64>().unwrap(),
        );
        let (min, max) = (f[8].parse::<f64>().unwrap(), f[9].parse::<f64>().unwrap());
        assert!(min <= p10 && p10 <= p90 && p90 <= max, "band order: {line}");
        assert!((0.0..=max).contains(&mean), "mean in range: {line}");
    }
}

#[test]
fn telemetry_files_are_identical_across_thread_counts() {
    // Artifacts are merged in trial order, so the exported files are
    // bit-identical no matter how trials were scheduled over workers.
    let cfg = lossy();
    let (tl_seq, tl_par) = (tmp_path("seq.csv"), tmp_path("par.csv"));
    let (pm_seq, pm_par) = (tmp_path("seq.jsonl"), tmp_path("par.jsonl"));
    let mk = |tl: &str, pm: &str| ObsOptions {
        postmortem: Some(pm.to_string()),
        ..obs_with_timeline(tl, None)
    };
    let (a, _) = run_trials_observed(&cfg, 42, 8, TrialMode::Full, 1, &mk(&tl_seq, &pm_seq));
    let (b, _) = run_trials_observed(&cfg, 42, 8, TrialMode::Full, 4, &mk(&tl_par, &pm_par));
    assert_eq!(a.p_loss.successes, b.p_loss.successes);

    let read = |p: &str| {
        let s = std::fs::read_to_string(p).expect("artifact written");
        std::fs::remove_file(p).ok();
        s
    };
    assert_eq!(
        read(&tl_seq),
        read(&tl_par),
        "timeline differs by thread count"
    );
    assert_eq!(
        read(&pm_seq),
        read(&pm_par),
        "post-mortems differ by thread count"
    );
}

#[test]
fn timeline_artifact_is_byte_identical_for_recycled_workspaces() {
    // Workspace recycling must not disturb telemetry: the rendered
    // timeline body built from recycled simulations equals, byte for
    // byte, the one built from freshly constructed simulations.
    use farm_core::PreparedConfig;
    use farm_obs::{TimelineBands, TimelineRecorder};
    use std::sync::Arc;

    let cfg = lossy();
    let duration = cfg.sim_duration().as_secs();
    let month = farm_des::time::SECONDS_PER_MONTH;

    let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
    let mut ws = farm_core::TrialWorkspace::with_reuse(true);
    let mut recycled_bands = TimelineBands::new();
    let mut fresh_bands = TimelineBands::new();
    for t in 0..4u64 {
        let seed = farm_des::rng::derive_seed(42, t);
        let sim = ws.obtain(&prepared, seed);
        sim.set_timeline(TimelineRecorder::new(month, duration));
        let _ = sim.run();
        recycled_bands.add_trial(&sim.take_timeline().expect("timeline"));

        let mut fresh = Simulation::new(cfg.clone(), seed);
        fresh.set_timeline(TimelineRecorder::new(month, duration));
        let _ = fresh.run();
        fresh_bands.add_trial(&fresh.take_timeline().expect("timeline"));
    }
    assert_eq!(
        recycled_bands.render(0, false, true),
        fresh_bands.render(0, false, true),
        "recycled timeline artifact diverges from fresh"
    );
}

#[test]
fn postmortem_chain_ends_in_the_fatal_event() {
    let cfg = lossy();
    let path = tmp_path("pm.jsonl");
    let obs = ObsOptions {
        postmortem: Some(path.clone()),
        ..ObsOptions::off()
    };
    let (summary, _) = run_trials_observed(&cfg, 42, 8, TrialMode::Full, 2, &obs);
    let body = std::fs::read_to_string(&path).expect("post-mortems written");
    std::fs::remove_file(&path).ok();

    assert!(summary.p_loss.successes > 0, "lossy config must lose data");
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "losses must produce post-mortems");
    for line in &lines {
        assert!(
            line.starts_with("{\"trial\":") && line.ends_with("]}"),
            "{line}"
        );
        // The chain's last event must be the one that dropped the
        // group below m: a `failure` for cause disk_failure, a
        // `latent` read trip for cause latent_read_error.
        let cause = line
            .split("\"cause\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("cause field");
        let last_ev = line
            .rsplit("\"ev\":\"")
            .next()
            .and_then(|s| s.split('"').next())
            .expect("chain events");
        match cause {
            "disk_failure" => assert_eq!(last_ev, "failure", "{line}"),
            "latent_read_error" => assert_eq!(last_ev, "latent", "{line}"),
            other => panic!("unknown cause {other:?}: {line}"),
        }
        assert!(line.contains("\"chain\":[{"), "chain is non-empty: {line}");
    }
}

#[test]
fn loss_trace_mode_keeps_exactly_the_losing_trials() {
    let cfg = lossy();
    let path = tmp_path("loss-trace.jsonl");
    let obs = ObsOptions {
        trace: Some(TraceSpec {
            sel: TraceSel::Loss,
            path: Some(path.clone()),
        }),
        ..ObsOptions::off()
    };
    let trials = 8;
    let (summary, _) = run_trials_observed(&cfg, 42, trials, TrialMode::Full, 2, &obs);
    let body = std::fs::read_to_string(&path).expect("loss traces written");
    std::fs::remove_file(&path).ok();

    // Every trace ends in a trial_end record reporting lost groups, and
    // the set of traced trials is exactly the set of losing trials.
    let mut traced = std::collections::BTreeSet::new();
    let mut ends = 0u64;
    for line in body.lines() {
        let trial: u64 = line
            .strip_prefix("{\"trial\":")
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("trial field");
        traced.insert(trial);
        if line.contains("\"ev\":\"trial_end\"") {
            ends += 1;
            assert!(
                !line.contains("\"lost_groups\":0"),
                "non-losing trial kept: {line}"
            );
        }
    }
    assert!(summary.p_loss.successes > 0, "lossy config must lose data");
    assert_eq!(traced.len() as u64, summary.p_loss.successes);
    assert_eq!(
        ends, summary.p_loss.successes,
        "one trial_end per losing trial"
    );
}

#[test]
fn full_telemetry_never_changes_the_lossy_summary() {
    // The golden bit-identity test for the loss-heavy path: timeline +
    // flight recorder + post-mortems + loss tracing all on.
    let cfg = lossy();
    let tl = tmp_path("golden.csv");
    let pm = tmp_path("golden-pm.jsonl");
    let tr = tmp_path("golden-tr.jsonl");
    let on = ObsOptions {
        profile: true,
        trace: Some(TraceSpec {
            sel: TraceSel::Loss,
            path: Some(tr.clone()),
        }),
        postmortem: Some(pm.clone()),
        ..obs_with_timeline(&tl, None)
    };
    let (base, _) = run_trials_observed(&cfg, 7, 6, TrialMode::Full, 1, &ObsOptions::off());
    let (full, _) = run_trials_observed(&cfg, 7, 6, TrialMode::Full, 1, &on);
    for p in [&tl, &pm, &tr] {
        std::fs::remove_file(p).ok();
    }
    assert_eq!(base.trials(), full.trials());
    assert_eq!(base.p_loss.successes, full.p_loss.successes);
    assert_eq!(
        base.failures.mean().to_bits(),
        full.failures.mean().to_bits()
    );
    assert_eq!(base.events.mean().to_bits(), full.events.mean().to_bits());
    // Compact histogram forms are lossless: string equality is bit
    // equality of the whole distribution.
    assert_eq!(
        base.vulnerability.to_compact(),
        full.vulnerability.to_compact()
    );
    assert_eq!(base.queue_delay.to_compact(), full.queue_delay.to_compact());
    assert_eq!(base.fanout.to_compact(), full.fanout.to_compact());
}
