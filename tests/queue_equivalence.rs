//! The event-queue knob must be invisible to results: the binary-heap
//! and calendar future event lists both pop time-ascending with FIFO
//! tie-breaking, so a trial is bit-for-bit identical under either.

use farm_core::prelude::*;

fn base() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 32 * TIB,
        group_user_bytes: 10 * GIB,
        ..SystemConfig::default()
    }
}

fn assert_metrics_identical(a: &TrialMetrics, b: &TrialMetrics, what: &str) {
    assert_eq!(a.lost_groups, b.lost_groups, "{what}: lost_groups");
    assert_eq!(a.lost_user_bytes, b.lost_user_bytes, "{what}: lost bytes");
    assert_eq!(a.first_loss, b.first_loss, "{what}: first_loss");
    assert_eq!(a.disk_failures, b.disk_failures, "{what}: disk_failures");
    assert_eq!(
        a.rebuilds_completed, b.rebuilds_completed,
        "{what}: rebuilds"
    );
    assert_eq!(a.redirections, b.redirections, "{what}: redirections");
    assert_eq!(a.migrated_blocks, b.migrated_blocks, "{what}: migrations");
    assert_eq!(a.batches_added, b.batches_added, "{what}: batches");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: events_processed"
    );
    assert_eq!(a.no_targets, b.no_targets, "{what}: no_targets");
    // Vulnerability windows are sums of identical f64 terms in identical
    // order, so even these match exactly.
    assert_eq!(
        a.max_vulnerability_secs.to_bits(),
        b.max_vulnerability_secs.to_bits(),
        "{what}: max vulnerability"
    );
    assert_eq!(
        a.total_vulnerability_secs.to_bits(),
        b.total_vulnerability_secs.to_bits(),
        "{what}: total vulnerability"
    );
    // The pooled distributions are built from the same samples in the
    // same order; the lossless compact form must match byte for byte.
    assert_eq!(
        a.vulnerability.to_compact(),
        b.vulnerability.to_compact(),
        "{what}: vulnerability histogram"
    );
    assert_eq!(
        a.queue_delay.to_compact(),
        b.queue_delay.to_compact(),
        "{what}: queue-delay histogram"
    );
    assert_eq!(
        a.fanout.to_compact(),
        b.fanout.to_compact(),
        "{what}: fan-out histogram"
    );
}

#[test]
fn heap_and_calendar_queues_produce_identical_trials() {
    let heap_cfg = base();
    assert_eq!(heap_cfg.queue, QueueKind::Heap, "heap is the default");
    let cal_cfg = SystemConfig {
        queue: QueueKind::Calendar,
        ..base()
    };
    for seed in 0..8u64 {
        let heap = run_trial(&heap_cfg, 2026, seed, TrialMode::Full);
        let cal = run_trial(&cal_cfg, 2026, seed, TrialMode::Full);
        assert_metrics_identical(&heap, &cal, &format!("seed {seed}"));
    }
}

#[test]
fn queue_kinds_agree_under_stressed_recovery() {
    // Heavier event traffic (fast-failing drives, batch replacement,
    // erasure coding) exercises far more schedule/pop interleavings.
    let stressed = |queue| SystemConfig {
        scheme: Scheme::new(4, 6),
        hazard: farm_disk::failure::Hazard::table1().with_multiplier(4.0),
        replacement: ReplacementPolicy::at_fraction(0.04),
        queue,
        ..base()
    };
    let heap_cfg = stressed(QueueKind::Heap);
    let cal_cfg = stressed(QueueKind::Calendar);
    for seed in [1u64, 17, 4242] {
        let heap = run_trial(&heap_cfg, seed, 0, TrialMode::Full);
        let cal = run_trial(&cal_cfg, seed, 0, TrialMode::Full);
        assert_metrics_identical(&heap, &cal, &format!("stressed seed {seed}"));
        assert!(heap.disk_failures > 0, "stress config must produce events");
    }
}

#[test]
fn multi_trial_summaries_agree_across_queue_kinds() {
    let cal_cfg = SystemConfig {
        queue: QueueKind::Calendar,
        ..base()
    };
    // Single-threaded, so aggregation order is fixed and the queue-kind
    // comparison can be exact to the bit. (With work-stealing workers
    // the trial-to-worker partition — and therefore the merge order of
    // the running means — varies run to run at the last ULP.)
    let obs = farm_obs::ObsOptions::off();
    let (heap, _) = run_trials_observed(&base(), 7, 24, TrialMode::UntilLoss, 1, &obs);
    let (cal, _) = run_trials_observed(&cal_cfg, 7, 24, TrialMode::UntilLoss, 1, &obs);
    assert_eq!(heap.p_loss.value(), cal.p_loss.value());
    assert_eq!(heap.failures.mean(), cal.failures.mean());
    assert_eq!(heap.events.mean(), cal.events.mean());
}
