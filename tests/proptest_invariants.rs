//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use farm_des::rng::SeedFactory;
use farm_des::stats::Running;
use farm_des::time::Duration;
use farm_des::{EventQueue, SimTime};
use farm_disk::failure::Hazard;
use farm_erasure::{evenodd::EvenOdd, gf256, Scheme};
use farm_placement::{ClusterMap, Rush};
use proptest::prelude::*;

proptest! {
    // ----- GF(256) field laws ------------------------------------------

    #[test]
    fn gf256_mul_commutes(a: u8, b: u8) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
    }

    #[test]
    fn gf256_mul_associates(a: u8, b: u8, c: u8) {
        prop_assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c))
        );
    }

    #[test]
    fn gf256_distributes(a: u8, b: u8, c: u8) {
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
    }

    #[test]
    fn gf256_division_inverts_multiplication(a: u8, b in 1u8..) {
        prop_assert_eq!(gf256::div(gf256::mul(a, b), b), a);
    }

    // ----- Reed–Solomon round trip --------------------------------------

    #[test]
    fn rs_roundtrip_arbitrary_data_and_losses(
        seed: u64,
        len in 1usize..200,
        scheme_idx in 0usize..6,
        loss_seed: u64,
    ) {
        let scheme = Scheme::figure3_schemes()[scheme_idx];
        let m = scheme.m as usize;
        let n = scheme.n as usize;
        let codec = scheme.codec();
        let mut rng = SeedFactory::new(seed).stream(0);
        let data: Vec<Vec<u8>> = (0..m)
            .map(|_| (0..len).map(|_| rng.bits() as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = codec.encode(&refs);
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Lose a random tolerable subset.
        let k = scheme.fault_tolerance() as usize;
        let mut loss_rng = SeedFactory::new(loss_seed).stream(1);
        let lost = loss_rng.sample_distinct(n as u64, k);
        let mut working: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for &l in &lost {
            working[l as usize] = None;
        }
        prop_assert!(codec.reconstruct(&mut working));
        for (w, a) in working.iter().zip(&all) {
            prop_assert_eq!(w.as_ref().unwrap(), a);
        }
    }

    #[test]
    fn evenodd_double_erasure_roundtrip(
        m in 1usize..9,
        chunks in 1usize..4,
        seed: u64,
        a_pick: u64,
        b_pick: u64,
    ) {
        let code = EvenOdd::new(m);
        let col_len = code.rows() * chunks * 3;
        let mut rng = SeedFactory::new(seed).stream(9);
        let data: Vec<Vec<u8>> = (0..m)
            .map(|_| (0..col_len).map(|_| rng.bits() as u8).collect())
            .collect();
        let (p, q) = code.encode(&data);
        let all: Vec<Vec<u8>> = data.iter().cloned().chain([p, q]).collect();
        let total = m + 2;
        let a = (a_pick % total as u64) as usize;
        let b = (b_pick % total as u64) as usize;
        let mut cols: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        cols[a] = None;
        cols[b] = None;
        prop_assert!(code.reconstruct(&mut cols));
        for (i, c) in all.iter().enumerate() {
            prop_assert_eq!(cols[i].as_ref().unwrap(), c);
        }
    }

    // ----- Placement ----------------------------------------------------

    #[test]
    fn rush_candidates_distinct_and_deterministic(
        seed: u64,
        group: u64,
        disks in 4u32..200,
        take in 1usize..8,
    ) {
        let map = ClusterMap::uniform(disks);
        let rush = Rush::new(seed);
        let take = take.min(disks as usize);
        let a = rush.place(&map, group, take);
        let b = rush.place(&map, group, take);
        prop_assert_eq!(&a, &b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        prop_assert_eq!(set.len(), take);
    }

    #[test]
    fn rush_growth_only_moves_to_new_cluster_or_stays(
        seed: u64,
        groups in 1u64..200,
        old in 8u32..80,
        added in 1u32..40,
    ) {
        let before = ClusterMap::uniform(old);
        let mut after = before.clone();
        after.add_cluster(added, 1.0);
        let rush = Rush::new(seed);
        let mut moved_within_old = 0u32;
        let mut total = 0u32;
        for g in 0..groups {
            let a = rush.place(&before, g, 2);
            let b = rush.place(&after, g, 2);
            for (x, y) in a.iter().zip(&b) {
                total += 1;
                if x != y && y.0 < old {
                    moved_within_old += 1;
                }
            }
        }
        // Collision-chain shifts may move a candidate between old disks,
        // but only rarely; the bulk of churn must target the new cluster.
        prop_assert!(
            moved_within_old as f64 <= 0.05 * total as f64 + 2.0,
            "{} of {} placements moved between old disks",
            moved_within_old,
            total
        );
    }

    // ----- Event queue ---------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    // ----- Hazard sampling ------------------------------------------------

    #[test]
    fn hazard_ttf_is_positive_and_monotone_in_hazard(
        seed: u64,
        age_months in 0.0f64..60.0,
    ) {
        let h = Hazard::table1();
        let mut rng = SeedFactory::new(seed).stream(0);
        let ttf = h.sample_ttf(Duration::from_months(age_months), &mut rng);
        prop_assert!(ttf.as_secs() > 0.0);

        // Same uniform draw, doubled hazard => shorter or equal lifetime.
        let h2 = Hazard::table1().with_multiplier(2.0);
        let mut rng_a = SeedFactory::new(seed).stream(1);
        let mut rng_b = SeedFactory::new(seed).stream(1);
        let t1 = h.sample_ttf(Duration::ZERO, &mut rng_a);
        let t2 = h2.sample_ttf(Duration::ZERO, &mut rng_b);
        prop_assert!(t2 <= t1 + Duration::from_secs(1e-6));
    }

    // ----- Statistics ------------------------------------------------------

    #[test]
    fn running_merge_is_associative_enough(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = Running::new();
        whole.extend(xs.iter().copied());
        let mut left = Running::new();
        left.extend(xs[..split].iter().copied());
        let mut right = Running::new();
        right.extend(xs[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        }
    }

    // ----- Scheme arithmetic ------------------------------------------------

    #[test]
    fn scheme_sizes_are_consistent(m in 1u32..16, extra in 1u32..8, group_mult in 1u64..64) {
        let scheme = Scheme::new(m, m + extra);
        let group = group_mult * m as u64 * (1 << 20);
        prop_assert_eq!(scheme.block_bytes(group) * m as u64, group);
        prop_assert_eq!(
            scheme.stored_bytes(group),
            scheme.block_bytes(group) * (m + extra) as u64
        );
        let eff = scheme.storage_efficiency();
        prop_assert!(eff > 0.0 && eff < 1.0);
    }
}
