//! Property-based tests on the core data structures and invariants,
//! spanning crates.
//!
//! The build environment is offline, so instead of the `proptest` crate
//! these drive each property over many deterministically generated cases
//! from the workspace's own [`SeedFactory`]/[`RngStream`]. Every case is
//! reproducible from the constants below; on failure the assert message
//! carries the case index so it can be replayed in isolation.

use farm_des::rng::{RngStream, SeedFactory};
use farm_des::stats::Running;
use farm_des::time::Duration;
use farm_des::{EventQueue, SimTime};
use farm_disk::failure::Hazard;
use farm_erasure::{evenodd::EvenOdd, gf256, Scheme};
use farm_placement::{ClusterMap, Rush};

/// Master seed for every generated case in this file.
const MASTER: u64 = 0xFA12_31AB_CD00_7E57;

/// Per-property case stream: property `label`, case `i`.
fn cases(label: u64, count: u64) -> impl Iterator<Item = (u64, RngStream)> {
    let factory = SeedFactory::new(MASTER);
    (0..count).map(move |i| (i, factory.stream2(label, i)))
}

// ----- GF(256) field laws ------------------------------------------------

#[test]
fn gf256_mul_commutes() {
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!(gf256::mul(a, b), gf256::mul(b, a), "a={a} b={b}");
        }
    }
}

#[test]
fn gf256_mul_associates() {
    for (i, mut rng) in cases(1, 4000) {
        let a = rng.bits() as u8;
        let b = rng.bits() as u8;
        let c = rng.bits() as u8;
        assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c)),
            "case {i}: a={a} b={b} c={c}"
        );
    }
}

#[test]
fn gf256_distributes() {
    for (i, mut rng) in cases(2, 4000) {
        let a = rng.bits() as u8;
        let b = rng.bits() as u8;
        let c = rng.bits() as u8;
        assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c)),
            "case {i}: a={a} b={b} c={c}"
        );
    }
}

#[test]
fn gf256_division_inverts_multiplication() {
    for a in 0..=255u8 {
        for b in 1..=255u8 {
            assert_eq!(gf256::div(gf256::mul(a, b), b), a, "a={a} b={b}");
        }
    }
}

// ----- GF(256) kernel identity -------------------------------------------

/// Every compiled region kernel (scalar SWAR, SSSE3, AVX2) must agree
/// with the per-byte table lookup `gf256::mul` for **all 256 constants**,
/// across odd lengths, unaligned starting offsets, and the zero-length
/// slice. Unsupported kernels on this host are skipped (the CI kernel
/// matrix covers them on hosts that do support them).
#[test]
fn gf256_kernels_match_scalar_mul_for_all_constants() {
    use farm_erasure::gf256::kernel::{self, Kernel};
    for k in Kernel::ALL {
        if !k.supported() {
            continue;
        }
        for c in 0..=255u8 {
            for (i, mut rng) in cases(10 + c as u64, 4) {
                // Odd lengths around the 16/32-byte vector widths plus a
                // random tail, at an unaligned offset into the backing
                // allocation.
                let len = (2 * rng.below(40) + 1) as usize;
                let offset = 1 + rng.below(7) as usize;
                let backing: Vec<u8> = (0..offset + len).map(|_| rng.bits() as u8).collect();
                let src = &backing[offset..];

                let mut dst: Vec<u8> = (0..len).map(|_| rng.bits() as u8).collect();
                let expect_xor: Vec<u8> = src
                    .iter()
                    .zip(&dst)
                    .map(|(&s, &d)| d ^ gf256::mul(c, s))
                    .collect();
                kernel::mul_slice_xor(k, c, src, &mut dst);
                assert_eq!(
                    dst, expect_xor,
                    "case {i}: kernel {k} c={c} len={len} offset={offset} (xor)"
                );

                let mut buf = src.to_vec();
                let expect_mul: Vec<u8> = src.iter().map(|&s| gf256::mul(c, s)).collect();
                kernel::mul_slice(k, c, &mut buf);
                assert_eq!(
                    buf, expect_mul,
                    "case {i}: kernel {k} c={c} len={len} offset={offset} (in place)"
                );
            }
        }
        // Zero-length slices must be a no-op for every constant.
        for c in 0..=255u8 {
            let mut empty: Vec<u8> = Vec::new();
            kernel::mul_slice_xor(k, c, &[], &mut empty);
            kernel::mul_slice(k, c, &mut empty);
            assert!(empty.is_empty(), "kernel {k} c={c} touched empty slice");
        }
    }
}

/// `xor_slice` is `mul_slice_xor` with c=1; check every kernel against a
/// plain byte-wise xor at awkward lengths and offsets.
#[test]
fn gf256_kernel_xor_matches_reference() {
    use farm_erasure::gf256::kernel::{self, Kernel};
    for k in Kernel::ALL {
        if !k.supported() {
            continue;
        }
        for (i, mut rng) in cases(9, 200) {
            let len = rng.below(300) as usize;
            let offset = rng.below(9) as usize;
            let backing: Vec<u8> = (0..offset + len).map(|_| rng.bits() as u8).collect();
            let src = &backing[offset..];
            let mut dst: Vec<u8> = (0..len).map(|_| rng.bits() as u8).collect();
            let expect: Vec<u8> = src.iter().zip(&dst).map(|(&s, &d)| d ^ s).collect();
            kernel::xor_slice(k, src, &mut dst);
            assert_eq!(
                dst, expect,
                "case {i}: kernel {k} len={len} offset={offset}"
            );
        }
    }
}

// ----- Reed–Solomon round trip -------------------------------------------

#[test]
fn rs_roundtrip_arbitrary_data_and_losses() {
    for (i, mut rng) in cases(3, 60) {
        let scheme_idx = rng.below(6) as usize;
        let len = 1 + rng.below(199) as usize;
        let scheme = Scheme::figure3_schemes()[scheme_idx];
        let m = scheme.m as usize;
        let n = scheme.n as usize;
        let codec = scheme.codec();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|_| (0..len).map(|_| rng.bits() as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = codec.encode(&refs);
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Lose a random tolerable subset.
        let k = scheme.fault_tolerance() as usize;
        let lost = rng.sample_distinct(n as u64, k);
        let mut working: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for &l in &lost {
            working[l as usize] = None;
        }
        assert!(
            codec.reconstruct(&mut working),
            "case {i}: scheme {scheme:?} failed to reconstruct losses {lost:?}"
        );
        for (col, (w, a)) in working.iter().zip(&all).enumerate() {
            assert_eq!(w.as_ref().unwrap(), a, "case {i}: column {col} differs");
        }
    }
}

#[test]
fn evenodd_double_erasure_roundtrip() {
    for (i, mut rng) in cases(4, 60) {
        let m = 1 + rng.below(8) as usize;
        let chunks = 1 + rng.below(3) as usize;
        let code = EvenOdd::new(m);
        let col_len = code.rows() * chunks * 3;
        let data: Vec<Vec<u8>> = (0..m)
            .map(|_| (0..col_len).map(|_| rng.bits() as u8).collect())
            .collect();
        let (p, q) = code.encode(&data);
        let all: Vec<Vec<u8>> = data.iter().cloned().chain([p, q]).collect();
        let total = m + 2;
        let a = rng.below(total as u64) as usize;
        let b = rng.below(total as u64) as usize;
        let mut cols: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        cols[a] = None;
        cols[b] = None;
        assert!(
            code.reconstruct(&mut cols),
            "case {i}: EvenOdd(m={m}) failed on erasures ({a}, {b})"
        );
        for (col, c) in all.iter().enumerate() {
            assert_eq!(cols[col].as_ref().unwrap(), c, "case {i}: column {col}");
        }
    }
}

// ----- Placement ---------------------------------------------------------

#[test]
fn rush_candidates_distinct_and_deterministic() {
    for (i, mut rng) in cases(5, 120) {
        let seed = rng.bits();
        let group = rng.bits();
        let disks = 4 + rng.below(196) as u32;
        let take = (1 + rng.below(7) as usize).min(disks as usize);
        let map = ClusterMap::uniform(disks);
        let rush = Rush::new(seed);
        let a = rush.place(&map, group, take);
        let b = rush.place(&map, group, take);
        assert_eq!(a, b, "case {i}: placement not deterministic");
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), take, "case {i}: duplicate candidates in {a:?}");
    }
}

#[test]
fn rush_growth_only_moves_to_new_cluster_or_stays() {
    for (i, mut rng) in cases(6, 25) {
        let seed = rng.bits();
        let groups = 1 + rng.below(199);
        let old = 8 + rng.below(72) as u32;
        let added = 1 + rng.below(39) as u32;
        let before = ClusterMap::uniform(old);
        let mut after = before.clone();
        after.add_cluster(added, 1.0);
        let rush = Rush::new(seed);
        let mut moved_within_old = 0u32;
        let mut total = 0u32;
        for g in 0..groups {
            let a = rush.place(&before, g, 2);
            let b = rush.place(&after, g, 2);
            for (x, y) in a.iter().zip(&b) {
                total += 1;
                if x != y && y.0 < old {
                    moved_within_old += 1;
                }
            }
        }
        // Collision-chain shifts may move a candidate between old disks,
        // but only rarely; the bulk of churn must target the new cluster.
        assert!(
            moved_within_old as f64 <= 0.05 * total as f64 + 2.0,
            "case {i}: {moved_within_old} of {total} placements moved between old disks"
        );
    }
}

// ----- Event queue -------------------------------------------------------

#[test]
fn event_queue_pops_sorted() {
    for (i, mut rng) in cases(7, 50) {
        let n = 1 + rng.below(199) as usize;
        let times: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
        let mut q = EventQueue::new();
        for (j, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), j);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {i}: pop went backwards");
            last = t;
            count += 1;
        }
        assert_eq!(count, times.len(), "case {i}: lost events");
    }
}

// ----- Hazard sampling ---------------------------------------------------

#[test]
fn hazard_ttf_is_positive_and_monotone_in_hazard() {
    for (i, mut rng) in cases(8, 200) {
        let seed = rng.bits();
        let age_months = rng.uniform() * 60.0;
        let h = Hazard::table1();
        let mut draw = SeedFactory::new(seed).stream(0);
        let ttf = h.sample_ttf(Duration::from_months(age_months), &mut draw);
        assert!(ttf.as_secs() > 0.0, "case {i}: non-positive TTF");

        // Same uniform draw, doubled hazard => shorter or equal lifetime.
        let h2 = Hazard::table1().with_multiplier(2.0);
        let mut rng_a = SeedFactory::new(seed).stream(1);
        let mut rng_b = SeedFactory::new(seed).stream(1);
        let t1 = h.sample_ttf(Duration::ZERO, &mut rng_a);
        let t2 = h2.sample_ttf(Duration::ZERO, &mut rng_b);
        assert!(
            t2 <= t1 + Duration::from_secs(1e-6),
            "case {i}: doubled hazard lengthened lifetime"
        );
    }
}

// ----- Whole-system recovery ---------------------------------------------

#[test]
fn recovery_always_finds_a_target_at_paper_utilization() {
    // §2.3's hard constraints always leave an eligible target at the
    // paper's ~40% utilization; the promoted `no_targets` counter must
    // stay zero for every seed (the single-spare policy provisions its
    // own fresh drive, so it trivially satisfies this too).
    use farm_core::prelude::*;
    for (i, mut rng) in cases(11, 6) {
        let cfg = SystemConfig {
            total_user_bytes: 2 * (1 << 40),
            group_user_bytes: 1 << 32,
            disk_capacity: 1 << 36,
            recovery: if rng.below(4) == 0 {
                RecoveryPolicy::SingleSpare
            } else {
                RecoveryPolicy::Farm
            },
            ..SystemConfig::default()
        };
        let m = run_trial(&cfg, rng.bits(), 0, TrialMode::Full);
        assert_eq!(m.no_targets, 0, "case {i}: rebuild found no target");
        assert!(m.disk_failures > 0, "case {i}: trial saw no failures");
    }
}

// ----- Statistics --------------------------------------------------------

#[test]
fn running_merge_is_associative_enough() {
    for (i, mut rng) in cases(9, 200) {
        let n = rng.below(100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.uniform() - 0.5) * 2e6).collect();
        let split = if n == 0 {
            0
        } else {
            rng.below(n as u64 + 1) as usize
        };
        let mut whole = Running::new();
        whole.extend(xs.iter().copied());
        let mut left = Running::new();
        left.extend(xs[..split].iter().copied());
        let mut right = Running::new();
        right.extend(xs[split..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count(), "case {i}");
        if whole.count() > 0 {
            assert!(
                (left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()),
                "case {i}: merged mean {} vs whole {}",
                left.mean(),
                whole.mean()
            );
        }
    }
}

// ----- Scheme arithmetic -------------------------------------------------

#[test]
fn scheme_sizes_are_consistent() {
    for (i, mut rng) in cases(10, 300) {
        let m = 1 + rng.below(15) as u32;
        let extra = 1 + rng.below(7) as u32;
        let group_mult = 1 + rng.below(63);
        let scheme = Scheme::new(m, m + extra);
        let group = group_mult * m as u64 * (1 << 20);
        assert_eq!(scheme.block_bytes(group) * m as u64, group, "case {i}");
        assert_eq!(
            scheme.stored_bytes(group),
            scheme.block_bytes(group) * (m + extra) as u64,
            "case {i}"
        );
        let eff = scheme.storage_efficiency();
        assert!(eff > 0.0 && eff < 1.0, "case {i}: efficiency {eff}");
    }
}
