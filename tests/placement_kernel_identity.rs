//! Cross-kernel byte-identity of the placement engine.
//!
//! The batched RUSH placement kernels (scalar, SSE2, AVX2) are selected
//! at runtime, and the engine memoizes walk prefixes that recovery
//! replays, so a dispatch or memo bug would silently change simulation
//! results depending on the host CPU or engine toggle. This test pins
//! the contract: the initial layout and every trial metric must be
//! bit-identical under every supported kernel, with the engine on or
//! off, fresh or recycled (including recycling across configurations,
//! which exercises memo resizing and invalidation).
//!
//! The CI placement-kernel matrix runs this binary once per
//! `FARM_PLACE_KERNEL` value; the single test below first asserts that
//! the startup selection honours that variable, then switches kernels
//! explicitly via `set_active`. Everything lives in one `#[test]`
//! because the active kernel and the engine toggle are process-global
//! state — parallel test threads flipping them would race.

use farm_core::prelude::*;
use farm_des::rng::derive_seed;
use farm_disk::latent::LatentConfig;
use farm_placement::kernel::{self, Kernel};
use std::sync::Arc;

fn base() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

/// Two-way mirroring with unscrubbed latent sector errors: loses data,
/// exercising the loss paths and plenty of recovery-target walks (which
/// resume from the memoized placement prefixes).
fn lossy() -> SystemConfig {
    SystemConfig {
        scheme: Scheme::two_way_mirroring(),
        group_user_bytes: 10 * GIB,
        latent: Some(LatentConfig {
            defects_per_drive_year: 1.0,
            scrub_interval: None,
        }),
        ..base()
    }
}

/// Fast-failing drives with batch replacement: the cluster map grows
/// mid-trial, which must invalidate every memoized prefix.
fn stressed() -> SystemConfig {
    SystemConfig {
        scheme: Scheme::new(4, 6),
        hazard: farm_disk::failure::Hazard::table1().with_multiplier(4.0),
        replacement: ReplacementPolicy::at_fraction(0.04),
        ..base()
    }
}

fn assert_metrics_identical(a: &TrialMetrics, b: &TrialMetrics, what: &str) {
    assert_eq!(a.lost_groups, b.lost_groups, "{what}: lost_groups");
    assert_eq!(a.lost_user_bytes, b.lost_user_bytes, "{what}: lost bytes");
    assert_eq!(a.first_loss, b.first_loss, "{what}: first_loss");
    assert_eq!(a.disk_failures, b.disk_failures, "{what}: disk_failures");
    assert_eq!(
        a.rebuilds_completed, b.rebuilds_completed,
        "{what}: rebuilds"
    );
    assert_eq!(a.redirections, b.redirections, "{what}: redirections");
    assert_eq!(a.migrated_blocks, b.migrated_blocks, "{what}: migrations");
    assert_eq!(a.batches_added, b.batches_added, "{what}: batches");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: events_processed"
    );
    assert_eq!(a.no_targets, b.no_targets, "{what}: no_targets");
    assert_eq!(
        a.max_vulnerability_secs.to_bits(),
        b.max_vulnerability_secs.to_bits(),
        "{what}: max vulnerability"
    );
    assert_eq!(
        a.total_vulnerability_secs.to_bits(),
        b.total_vulnerability_secs.to_bits(),
        "{what}: total vulnerability"
    );
    assert_eq!(
        a.vulnerability.to_compact(),
        b.vulnerability.to_compact(),
        "{what}: vulnerability histogram"
    );
    assert_eq!(
        a.queue_delay.to_compact(),
        b.queue_delay.to_compact(),
        "{what}: queue-delay histogram"
    );
}

/// The full initial layout — every group's homes in order — as one flat
/// vector, for exact comparison across kernels and engine settings.
fn full_layout(cfg: &SystemConfig, seed: u64) -> Vec<u32> {
    let sim = Simulation::new(cfg.clone(), seed);
    let layout = sim.layout();
    let mut flat =
        Vec::with_capacity(layout.n_groups() as usize * layout.blocks_per_group() as usize);
    for g in 0..layout.n_groups() {
        flat.extend(layout.homes_of(g).iter().map(|d| d.0));
    }
    flat
}

#[test]
fn placement_is_byte_identical_across_kernels_and_engine_modes() {
    // --- startup dispatch honours FARM_PLACE_KERNEL (the CI matrix
    // sets it; locally it is usually unset and this block is a no-op).
    let startup = kernel::active();
    if let Ok(raw) = std::env::var("FARM_PLACE_KERNEL") {
        if let Some(want) = Kernel::parse(&raw) {
            if want.supported() {
                assert_eq!(
                    startup, want,
                    "FARM_PLACE_KERNEL={raw} but startup kernel is {startup}"
                );
            } else {
                // Unsupported request must fall back to autodetection,
                // not crash — reaching this line at all proves that.
                assert_eq!(startup, Kernel::detect());
            }
        }
    }
    let startup_engine = kernel::set_engine_enabled(true);

    let supported: Vec<Kernel> = Kernel::ALL.into_iter().filter(|k| k.supported()).collect();
    assert!(supported.contains(&Kernel::Scalar));

    let configs = [
        ("base", base()),
        ("lossy", lossy()),
        ("stressed", stressed()),
    ];

    // --- full-layout equality: every group's homes, engine off (the
    // pure sequential walk) as reference, then engine on under every
    // supported kernel.
    for (name, cfg) in &configs {
        let seed = derive_seed(0x9A7C, 1);
        kernel::set_engine_enabled(false);
        let reference = full_layout(cfg, seed);
        kernel::set_engine_enabled(true);
        for &k in &supported {
            kernel::set_active(k);
            assert_eq!(
                full_layout(cfg, seed),
                reference,
                "{name}: initial layout differs under {k} (engine on vs off)"
            );
        }
    }

    // --- whole-trial equality: metrics (counters, f64 bits, histograms)
    // of complete trials — covering recovery-target walks resumed from
    // the memoized prefixes, spares, and batch replacement's memo
    // invalidation — compared engine-off vs engine-on per kernel.
    for (name, cfg) in &configs {
        for t in 0..2u64 {
            let seed = derive_seed(0x51AB, t);
            kernel::set_engine_enabled(false);
            let reference = Simulation::new(cfg.clone(), seed).run();
            kernel::set_engine_enabled(true);
            for &k in &supported {
                kernel::set_active(k);
                let got = Simulation::new(cfg.clone(), seed).run();
                assert_metrics_identical(&got, &reference, &format!("{name} trial {t} under {k}"));
            }
        }
    }

    // --- recycling across configurations: the memo must resize and
    // invalidate correctly when a workspace hops between shapes. Engine
    // on with recycling vs engine off with fresh construction.
    kernel::set_active(Kernel::detect());
    let seq = [
        ("stressed", stressed()),
        ("stressed->lossy", lossy()),
        ("lossy->base", base()),
        ("base->stressed", stressed()),
    ];
    let mut ws = TrialWorkspace::with_reuse(true);
    for (i, (what, cfg)) in seq.iter().enumerate() {
        let seed = derive_seed(0xC0F1, i as u64);
        kernel::set_engine_enabled(true);
        let prepared = Arc::new(PreparedConfig::new(cfg.clone()));
        let recycled = ws.obtain(&prepared, seed).run();
        kernel::set_engine_enabled(false);
        let fresh = Simulation::new(cfg.clone(), seed).run();
        assert_metrics_identical(&recycled, &fresh, what);
    }

    // Restore the startup selection for any later code in this process.
    kernel::set_engine_enabled(startup_engine);
    kernel::set_active(startup);
}
