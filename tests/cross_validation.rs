//! Cross-validation of the simulator against the closed-form analytic
//! model (`farm_core::analytic`) in regimes where the analytic
//! assumptions hold: constant hazard, zero detection latency, FARM
//! recovery with ample bandwidth (so the repair window is deterministic
//! and small), independent-ish groups.

use farm_core::analytic;
use farm_core::prelude::*;
use farm_des::time::SECONDS_PER_HOUR;
use farm_disk::failure::Hazard;

/// Constant-hazard configuration tuned so the analytic model applies:
/// the rate must stay low enough that the population (and therefore the
/// per-group environment) is roughly stationary over six years.
fn analytic_friendly(rate_per_1000h: f64) -> SystemConfig {
    SystemConfig {
        total_user_bytes: PIB / 8,
        group_user_bytes: 10 * GIB,
        detection_latency: Duration::ZERO,
        recovery_bandwidth: 30 * MIB,
        hazard: Hazard::constant(rate_per_1000h),
        ..SystemConfig::default()
    }
}

#[test]
fn simulated_loss_probability_matches_birth_death_model() {
    // 0.5% per 1000 h loses ~23% of drives over six years — high enough
    // for measurable system-level loss with many small groups, low
    // enough that the stationary-population assumption roughly holds.
    let cfg = SystemConfig {
        total_user_bytes: PIB,
        group_user_bytes: GIB,
        recovery_bandwidth: 16 * MIB,
        ..analytic_friendly(0.005)
    };
    let lambda = 0.005 / (1000.0 * SECONDS_PER_HOUR);
    // Repair window: detection (0) + rebuild of one 1 GiB block at
    // 16 MiB/s = 64 s. Queueing adds a little; the model tolerates it.
    let window = cfg.block_rebuild_secs();
    let horizon = cfg.sim_duration().as_secs();
    let predicted = analytic::system_loss_probability(
        cfg.n_groups(),
        cfg.scheme.n,
        cfg.scheme.m,
        lambda,
        window,
        horizon,
    );
    let trials = 200;
    let measured = run_trials(&cfg, 4242, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    // Independence and stationarity assumptions bias the model;
    // agreement within a factor of ~2.5 already rules out unit mistakes
    // (seconds vs hours would be 3600x off, λ vs 2λ clearly visible).
    assert!(
        predicted > 0.01 && predicted < 0.5,
        "test regime drifted: predicted {predicted:.4}"
    );
    assert!(
        measured > 0.4 * predicted && measured < 2.5 * predicted,
        "measured {measured:.4} vs predicted {predicted:.4}"
    );
}

#[test]
fn mttdl_ordering_matches_analytic_ordering() {
    // The analytic model and the simulator must rank schemes the same
    // way on identical inputs.
    let lambda = 0.1 / (1000.0 * SECONDS_PER_HOUR);
    let window = 341.0;
    let m12 = analytic::system_mttdl(1000, 2, 1, lambda, window);
    let m13 = analytic::system_mttdl(1000, 3, 1, lambda, window);
    let m45 = analytic::system_mttdl(1000, 5, 4, lambda, window);
    assert!(m13 > m12, "3-way mirroring outlasts 2-way");
    assert!(m12 > m45, "2-way mirroring outlasts 4/5 single parity");

    let trials = 200;
    let mk = |scheme| SystemConfig {
        scheme,
        hazard: Hazard::constant(0.1),
        ..analytic_friendly(0.1)
    };
    let p12 = run_trials(&mk(Scheme::new(1, 2)), 5, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    let p45 = run_trials(&mk(Scheme::new(4, 5)), 5, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    assert!(
        p45 >= p12,
        "4/5 ({p45}) must lose at least as much as 1/2 ({p12}), matching analytic order"
    );
}

#[test]
fn vulnerability_window_matches_rebuild_arithmetic() {
    // With zero detection latency, FARM and idle pipes, the mean window
    // should approach block_bytes / bandwidth.
    let cfg = analytic_friendly(0.01);
    let summary = run_trials(&cfg, 77, 20, TrialMode::Full);
    let ideal = cfg.block_rebuild_secs();
    let measured = summary.mean_vulnerability.mean();
    assert!(
        measured >= ideal * 0.99,
        "window {measured} below physical minimum {ideal}"
    );
    assert!(
        measured <= ideal * 1.5,
        "window {measured} should be near {ideal} when pipes are idle"
    );
}

#[test]
fn flattened_hazard_preserves_failure_volume_but_not_infancy() {
    // The bathtub-vs-flat ablation baseline: equal six-year failure
    // probability, so equal mean failure counts in simulation.
    let bathtub = SystemConfig {
        ..analytic_friendly(0.0)
    };
    let bathtub = SystemConfig {
        hazard: Hazard::table1(),
        ..bathtub
    };
    let flat = SystemConfig {
        hazard: Hazard::table1().flattened(),
        ..analytic_friendly(0.0)
    };
    let trials = 10;
    let fb = run_trials(&bathtub, 31, trials, TrialMode::Full)
        .failures
        .mean();
    let ff = run_trials(&flat, 31, trials, TrialMode::Full)
        .failures
        .mean();
    assert!(
        (fb / ff - 1.0).abs() < 0.1,
        "bathtub {fb} vs flattened {ff} failure counts"
    );
}
