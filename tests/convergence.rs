//! Convergence-stream and sequential-stopping golden tests: turning
//! the stream on never changes simulation results by a bit, the final
//! JSONL record agrees with the batch summary exactly, the stream is
//! byte-identical across thread counts, and `--target-rel-ci` stops at
//! the same boundary-aligned trial count no matter how the workers are
//! scheduled — with the stopped run a bit-identical prefix of the
//! unstopped one.

use farm_bench::json::Json;
use farm_core::prelude::*;
use farm_des::stats::Running;
use farm_obs::{ConvergenceSpec, ObsOptions};

fn tiny() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

fn conv_obs(path: &std::path::Path, target: Option<f64>) -> ObsOptions {
    ObsOptions {
        convergence: Some(ConvergenceSpec {
            path: path.to_str().unwrap().to_string(),
            base_trials: Some(8),
        }),
        target_rel_ci: target,
        ..ObsOptions::off()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("farm-conv-{name}-{}.jsonl", std::process::id()))
}

fn assert_running_identical(a: &Running, b: &Running, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{what}: mean");
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: min");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: max");
}

fn assert_summaries_identical(a: &McSummary, b: &McSummary) {
    assert_eq!(a.trials(), b.trials());
    assert_eq!(a.p_loss.successes, b.p_loss.successes);
    assert_eq!(a.p_redirection.successes, b.p_redirection.successes);
    assert_running_identical(&a.failures, &b.failures, "failures");
    assert_running_identical(&a.rebuilds, &b.rebuilds, "rebuilds");
    assert_running_identical(&a.redirections, &b.redirections, "redirections");
    assert_running_identical(&a.lost_groups, &b.lost_groups, "lost_groups");
    assert_running_identical(&a.events, &b.events, "events");
    assert_eq!(a.vulnerability.to_compact(), b.vulnerability.to_compact());
    assert_eq!(a.queue_delay.to_compact(), b.queue_delay.to_compact());
    assert_eq!(a.fanout.to_compact(), b.fanout.to_compact());
}

/// A deliberately fragile variant of [`tiny`]: detection takes a week
/// and rebuilds crawl, so mirror pairs overlap in their vulnerability
/// windows often enough that the stopping rule has losses to work with.
fn lossy() -> SystemConfig {
    SystemConfig {
        detection_latency: Duration::from_secs(7.0 * 86400.0),
        recovery_bandwidth: 64 * 1024,
        ..tiny()
    }
}

/// Parse every line of a convergence stream and sanity-check the fixed
/// envelope (schema, config label, monotone trials, exactly one final).
fn parse_stream(path: &std::path::Path) -> Vec<Json> {
    let body = std::fs::read_to_string(path).expect("convergence stream written");
    let rows: Vec<Json> = body
        .lines()
        .map(|l| Json::parse(l).expect("stream line parses"))
        .collect();
    assert!(!rows.is_empty(), "empty convergence stream");
    for row in &rows {
        assert_eq!(
            row.get("schema").and_then(|s| s.as_str()),
            Some("farm-convergence-v1")
        );
    }
    let trials: Vec<f64> = rows
        .iter()
        .map(|r| r.get("trials").and_then(|t| t.as_f64()).unwrap())
        .collect();
    assert!(
        trials.windows(2).all(|w| w[1] > w[0]),
        "non-monotone checkpoint trials: {trials:?}"
    );
    let finals = rows
        .iter()
        .filter(|r| r.get("final") == Some(&Json::Bool(true)))
        .count();
    assert_eq!(finals, 1, "exactly one final record");
    assert_eq!(rows.last().unwrap().get("final"), Some(&Json::Bool(true)));
    rows
}

#[test]
fn golden_results_identical_with_stream_on() {
    let cfg = tiny();
    let path = tmp("golden");
    let off = ObsOptions::off();
    let on = conv_obs(&path, None);
    // Single-threaded so the comparison is exact to the bit.
    let (base, _) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &off);
    let (streamed, _) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &on);
    std::fs::remove_file(&path).ok();
    assert_summaries_identical(&base, &streamed);
}

#[test]
fn final_record_agrees_with_batch_summary_exactly() {
    let cfg = lossy();
    let path = tmp("final");
    let (summary, _) =
        run_trials_observed(&cfg, 11, 192, TrialMode::Full, 2, &conv_obs(&path, None));
    let rows = parse_stream(&path);
    std::fs::remove_file(&path).ok();
    let last = rows.last().unwrap();
    assert_eq!(
        last.get("trials").and_then(|t| t.as_f64()),
        Some(summary.trials() as f64)
    );
    assert_eq!(
        last.get("losses").and_then(|l| l.as_f64()),
        Some(summary.p_loss.successes as f64)
    );
    // `jnum` renders shortest-roundtrip floats, so parsed == computed.
    let p = last.get("p_loss").and_then(|p| p.as_f64()).unwrap();
    assert_eq!(
        p.to_bits(),
        summary.p_loss.value().to_bits(),
        "final streamed p_loss must equal the batch summary exactly"
    );
    let (lo, hi) = summary.p_loss.wilson95();
    let slo = last.get("wilson95_lo").and_then(|v| v.as_f64()).unwrap();
    let shi = last.get("wilson95_hi").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(slo.to_bits(), lo.to_bits());
    assert_eq!(shi.to_bits(), hi.to_bits());
}

#[test]
fn stream_bytes_identical_across_thread_counts() {
    let cfg = lossy();
    let p1 = tmp("threads-1");
    let p4 = tmp("threads-4");
    run_trials_observed(&cfg, 42, 100, TrialMode::Full, 1, &conv_obs(&p1, None));
    run_trials_observed(&cfg, 42, 100, TrialMode::Full, 4, &conv_obs(&p4, None));
    parse_stream(&p1);
    let a = std::fs::read(&p1).expect("stream (1 thread)");
    let b = std::fs::read(&p4).expect("stream (4 threads)");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p4).ok();
    assert!(
        a == b,
        "convergence stream changed with the thread count:\n{}\nvs\n{}",
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b)
    );
}

/// The stopping rule: boundary-aligned, reproducible across runs and
/// thread counts, and the stopped run is a bit-identical prefix of the
/// unstopped one.
#[test]
fn target_rel_ci_stops_deterministically() {
    use farm_obs::STOP_CHECK_EVERY;
    let cfg = lossy();
    let total = 2048u64;
    let target = 0.75;

    let run = |threads: usize, name: &str| {
        let path = tmp(name);
        let (summary, _) = run_trials_observed(
            &cfg,
            7,
            total,
            TrialMode::Full,
            threads,
            &conv_obs(&path, Some(target)),
        );
        let rows = parse_stream(&path);
        std::fs::remove_file(&path).ok();
        (summary, rows)
    };

    let (stopped, rows) = run(1, "stop-a");
    let s = stopped.trials();
    assert!(s < total, "the rule never triggered in {total} trials");
    assert_eq!(s % STOP_CHECK_EVERY, 0, "stop at {s} is off-boundary");
    assert!(stopped.p_loss.successes > 0, "stopped with zero losses");
    // The final record reflects the stopped prefix.
    let last = rows.last().unwrap();
    assert_eq!(last.get("trials").and_then(|t| t.as_f64()), Some(s as f64));
    let rel = last.get("rel_half_width").and_then(|v| v.as_f64()).unwrap();
    assert!(rel <= target, "stopped at rel half-width {rel} > {target}");

    // Same stop count on a re-run and across thread counts.
    let (again, _) = run(1, "stop-b");
    assert_summaries_identical(&stopped, &again);
    let (parallel, _) = run(4, "stop-c");
    assert_eq!(parallel.trials(), s, "stop count depends on threads");
    assert_eq!(parallel.p_loss.successes, stopped.p_loss.successes);

    // Prefix exactness: an unstopped run of exactly `s` trials is the
    // same run, bit for bit.
    let (prefix, _) = run_trials_observed(&cfg, 7, s, TrialMode::Full, 1, &ObsOptions::off());
    assert_summaries_identical(&stopped, &prefix);
}

#[test]
fn zero_loss_config_never_stops() {
    // `tiny` saw zero losses in this range; the rule must run the full
    // batch and the stream must publish a null rel_half_width.
    let cfg = tiny();
    let path = tmp("zero-loss");
    let (summary, _) = run_trials_observed(
        &cfg,
        2004,
        96,
        TrialMode::Full,
        2,
        &conv_obs(&path, Some(0.5)),
    );
    let rows = parse_stream(&path);
    std::fs::remove_file(&path).ok();
    assert_eq!(summary.trials(), 96, "zero-loss batch was cut short");
    assert_eq!(summary.p_loss.successes, 0, "config is no longer loss-free");
    let last = rows.last().unwrap();
    assert_eq!(last.get("rel_half_width"), Some(&Json::Null));
    assert_eq!(last.get("losses").and_then(|l| l.as_f64()), Some(0.0));
}
