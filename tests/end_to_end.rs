//! End-to-end integration: whole-system simulations exercising every
//! crate together, asserting the paper's headline findings at reduced
//! scale.

use farm_core::prelude::*;
use farm_disk::failure::Hazard;

/// 0.25 PiB system — large enough for meaningful statistics, small
/// enough for CI.
fn quarter_pib() -> SystemConfig {
    SystemConfig {
        total_user_bytes: PIB / 4,
        group_user_bytes: 5 * GIB,
        ..SystemConfig::default()
    }
}

#[test]
fn farm_beats_single_spare_raid() {
    // The paper's central claim (Figure 3): FARM dramatically lowers the
    // probability of data loss relative to single-spare rebuild.
    let trials = 40;
    let farm = run_trials(&quarter_pib(), 2004, trials, TrialMode::UntilLoss);
    let raid_cfg = SystemConfig {
        recovery: RecoveryPolicy::SingleSpare,
        ..quarter_pib()
    };
    let raid = run_trials(&raid_cfg, 2004, trials, TrialMode::UntilLoss);
    assert!(
        raid.p_loss.value() > farm.p_loss.value(),
        "RAID {} must lose more than FARM {}",
        raid.p_loss.value(),
        farm.p_loss.value()
    );
    // And the gap is substantial, not marginal.
    assert!(
        raid.p_loss.value() >= farm.p_loss.value() + 0.05,
        "expected a >5-point reliability gap, got RAID {} vs FARM {}",
        raid.p_loss.value(),
        farm.p_loss.value()
    );
}

#[test]
fn higher_fault_tolerance_means_less_loss() {
    // Figure 3's scheme ordering: double-fault-tolerant schemes keep
    // P(loss) near zero while single-fault schemes lose data.
    let trials = 30;
    let mk = |scheme| SystemConfig {
        scheme,
        group_user_bytes: 10 * GIB,
        hazard: Hazard::table1().with_multiplier(2.0),
        ..quarter_pib()
    };
    let p12 = run_trials(&mk(Scheme::new(1, 2)), 1, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    let p13 = run_trials(&mk(Scheme::new(1, 3)), 1, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    assert!(
        p13 <= p12,
        "3-way mirroring ({p13}) must not lose more than 2-way ({p12})"
    );
}

#[test]
fn detection_latency_hurts_reliability() {
    // Figure 4: longer detection latency, higher P(loss) — strongest for
    // small groups where the latency dominates the window.
    let trials = 40;
    let mk = |secs: f64| SystemConfig {
        group_user_bytes: GIB,
        detection_latency: Duration::from_secs(secs),
        ..quarter_pib()
    };
    let fast = run_trials(&mk(0.0), 3, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    // Four hours of latency pushes the per-trial loss probability to
    // roughly one third at this scale, so a 40-trial sample showing no
    // losses would be a ~5e-8 event — safe to assert on for any seed.
    let slow = run_trials(&mk(4.0 * 3600.0), 3, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    assert!(
        slow >= fast,
        "4 h detection ({slow}) must not beat instant detection ({fast})"
    );
    assert!(
        slow > 0.0,
        "four hours of latency on 1 GiB groups must show losses"
    );
}

#[test]
fn recovery_bandwidth_matters_more_without_farm() {
    // Figure 5: bandwidth helps dramatically without FARM; with FARM the
    // windows are already small.
    let trials = 30;
    let mk = |recovery, bw: u64| SystemConfig {
        recovery,
        group_user_bytes: GIB,
        recovery_bandwidth: bw * MIB,
        ..quarter_pib()
    };
    let raid_slow = run_trials(
        &mk(RecoveryPolicy::SingleSpare, 8),
        9,
        trials,
        TrialMode::UntilLoss,
    )
    .p_loss
    .value();
    let raid_fast = run_trials(
        &mk(RecoveryPolicy::SingleSpare, 40),
        9,
        trials,
        TrialMode::UntilLoss,
    )
    .p_loss
    .value();
    assert!(
        raid_fast < raid_slow,
        "5x bandwidth must help RAID: 8 MiB/s {raid_slow} vs 40 MiB/s {raid_fast}"
    );
    let farm_slow = run_trials(
        &mk(RecoveryPolicy::Farm, 8),
        9,
        trials,
        TrialMode::UntilLoss,
    )
    .p_loss
    .value();
    assert!(
        farm_slow <= raid_slow,
        "FARM at 8 MiB/s ({farm_slow}) must not lose more than RAID at 8 MiB/s ({raid_slow})"
    );
}

#[test]
fn loss_probability_grows_with_scale() {
    // Figure 8: P(loss) approximately linear in system size.
    let trials = 40;
    let mk = |total: u64| SystemConfig {
        total_user_bytes: total,
        group_user_bytes: 2 * GIB,
        ..SystemConfig::default()
    };
    let small = run_trials(&mk(PIB / 16), 11, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    let large = run_trials(&mk(PIB / 2), 11, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    assert!(
        large >= small,
        "8x the system ({large}) must not lose less than the small one ({small})"
    );
}

#[test]
fn doubled_failure_rates_hurt() {
    // Figure 8(b): doubling drive failure rates more than doubles loss
    // (we assert the direction, not the factor, at this scale).
    let trials = 40;
    let mk = |mult: f64| SystemConfig {
        group_user_bytes: GIB,
        hazard: Hazard::table1().with_multiplier(mult),
        ..quarter_pib()
    };
    let base = run_trials(&mk(1.0), 13, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    let doubled = run_trials(&mk(2.0), 13, trials, TrialMode::UntilLoss)
        .p_loss
        .value();
    assert!(
        doubled >= base,
        "2x failure rates ({doubled}) must not beat baseline ({base})"
    );
}

#[test]
fn six_year_failure_count_matches_bathtub_integral() {
    let cfg = quarter_pib();
    let summary = run_trials(&cfg, 17, 10, TrialMode::Full);
    let expected = cfg
        .hazard
        .failure_probability(Duration::ZERO, Duration::from_years(6.0))
        * cfg.n_disks() as f64;
    let got = summary.failures.mean();
    assert!(
        (got / expected - 1.0).abs() < 0.15,
        "mean failures {got} vs analytic {expected}"
    );
}

#[test]
fn redirection_is_rare() {
    // §2.3: fewer than 8% of systems see even one redirection... at the
    // paper's scale. At quarter scale with 5 GiB groups the exposure is
    // smaller still; assert the weaker bound.
    let summary = run_trials(&quarter_pib(), 19, 20, TrialMode::Full);
    assert!(
        summary.p_redirection.value() <= 0.25,
        "redirection in {}% of systems",
        100.0 * summary.p_redirection.value()
    );
}
