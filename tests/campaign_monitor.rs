//! The live campaign monitor, end to end: a mid-run scrape of
//! `/metrics` and `/status` over a plain `TcpStream`, the final status
//! snapshot agreeing with the batch summary *exactly*, and the golden
//! contract that turning the monitor on never changes simulation
//! results or telemetry artifacts by a single byte.
//!
//! The monitor is process-global (one status file, one listener per
//! campaign), so every test here goes through [`monitor_obs`] /
//! [`monitor`] and identifies its own batch by a distinctive
//! `trials_total` rather than by batch index.

use farm_bench::json::Json;
use farm_core::prelude::*;
use farm_des::stats::Running;
use farm_obs::{CampaignMonitor, ObsOptions, StatusSpec, TimelineSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

fn tiny() -> SystemConfig {
    SystemConfig {
        total_user_bytes: 2 * TIB,
        group_user_bytes: 4 * GIB,
        disk_capacity: 64 * GIB,
        recovery_bandwidth: 16 * MIB,
        detection_latency: Duration::from_secs(30.0),
        ..SystemConfig::default()
    }
}

/// The one status-file path this test process uses.
fn status_path() -> &'static str {
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        std::env::temp_dir()
            .join(format!("farm-campaign-monitor-{}.json", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    })
}

/// Monitor-on observability options shared by every test in this file,
/// so whichever test runs first installs the process-global monitor
/// with the same spec the others expect.
fn monitor_obs() -> ObsOptions {
    ObsOptions {
        status: Some(StatusSpec {
            path: status_path().to_string(),
            interval_secs: Some(0.05),
        }),
        http: Some("127.0.0.1:0".to_string()),
        ..ObsOptions::off()
    }
}

fn monitor() -> &'static CampaignMonitor {
    farm_obs::campaign_monitor(&monitor_obs()).expect("monitor requested")
}

/// Scrape one path from the exporter with a plain TcpStream (no HTTP
/// client involved — the CI smoke uses curl, this uses the raw socket).
fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect to exporter");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: farm\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Parse the status document (over HTTP or from the file) and return
/// the entry of the batch with the given expected trial count — the
/// stable way to find "our" batch in a shared-process monitor.
fn batch_entry(doc: &str, trials_total: u64) -> Option<Json> {
    let json = Json::parse(doc).expect("status JSON parses");
    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("farm-status-v1")
    );
    json.get("batches")?
        .as_arr()?
        .iter()
        .find(|b| b.get("trials_total").and_then(|t| t.as_f64()) == Some(trials_total as f64))
        .cloned()
}

/// The value of `farm_trials_total{batch="<idx>",...}` in an exposition.
fn trials_counter(metrics: &str, batch_idx: u64) -> Option<u64> {
    let prefix = format!("farm_trials_total{{batch=\"{batch_idx}\",");
    metrics
        .lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn scrapes_observe_a_batch_in_flight() {
    let mon = monitor();
    let addr = mon.http_addr().expect("exporter bound");

    // Drive a batch by hand so the mid-run states are deterministic.
    let b = mon.begin_batch("hand-driven probe".into(), 7);
    let idx = b.state().index;
    let shard = b.shard();
    shard.record_trial(false, 1000, 0.002);
    shard.record_trial(true, 1000, 0.002);
    shard.record_trial(false, 1000, 0.002);

    let (head, metrics) = scrape(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert_eq!(trials_counter(&metrics, idx), Some(3));
    assert!(metrics.contains("# TYPE farm_trials_total counter"));
    assert!(metrics.contains("# TYPE farm_p_loss gauge"));

    let (head, status) = scrape(addr, "/status");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let entry = batch_entry(&status, 7).expect("our batch is in /status");
    assert_eq!(entry.get("done"), Some(&Json::Bool(false)));
    assert_eq!(entry.get("trials_done").and_then(|v| v.as_f64()), Some(3.0));
    assert_eq!(entry.get("losses").and_then(|v| v.as_f64()), Some(1.0));
    let p = entry.get("p_loss").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(p, 1.0 / 3.0);
    let lo = entry.get("wilson95_lo").and_then(|v| v.as_f64()).unwrap();
    let hi = entry.get("wilson95_hi").and_then(|v| v.as_f64()).unwrap();
    assert!(lo < p && p < hi, "wilson interval brackets the estimate");

    // Counters are monotone across scrapes.
    shard.record_trial(false, 1000, 0.002);
    let (_, metrics2) = scrape(addr, "/metrics");
    assert_eq!(trials_counter(&metrics2, idx), Some(4));

    // Finishing pins done=true, eta=0 and writes a snapshot file.
    for _ in 0..3 {
        shard.record_trial(false, 1000, 0.002);
    }
    b.finish();
    let (_, status) = scrape(addr, "/status");
    let entry = batch_entry(&status, 7).expect("finished batch still listed");
    assert_eq!(entry.get("done"), Some(&Json::Bool(true)));
    assert_eq!(entry.get("trials_done").and_then(|v| v.as_f64()), Some(7.0));
    assert_eq!(entry.get("eta_secs").and_then(|v| v.as_f64()), Some(0.0));
}

#[test]
fn driver_batch_is_scrapable_and_final_snapshot_is_exact() {
    let trials = 93u64;
    let obs = monitor_obs();
    let mon = monitor();
    let addr = mon.http_addr().expect("exporter bound");

    let cfg = tiny();
    let driver = std::thread::spawn({
        let cfg = cfg.clone();
        let obs = obs.clone();
        move || run_trials_observed(&cfg, 77, trials, TrialMode::Full, 2, &obs).0
    });

    // Scrape while the driver runs. The batch may appear and finish at
    // any point; what must hold is that every observed count for it is
    // monotone non-decreasing and the scrapes themselves always work.
    let mut seen = Vec::new();
    while !driver.is_finished() {
        let (head, status) = scrape(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        if let Some(entry) = batch_entry(&status, trials) {
            let idx = entry.get("batch").and_then(|v| v.as_f64()).unwrap() as u64;
            let (_, metrics) = scrape(addr, "/metrics");
            if let Some(n) = trials_counter(&metrics, idx) {
                seen.push(n);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let summary = driver.join().expect("driver thread");
    assert!(
        seen.windows(2).all(|w| w[0] <= w[1]),
        "trial counter went backwards: {seen:?}"
    );

    // `BatchHandle::finish` wrote the final snapshot synchronously, so
    // the file on disk already reflects the completed batch — and its
    // online estimate must equal the batch summary bit for bit.
    let body = std::fs::read_to_string(status_path()).expect("status file written");
    let entry = batch_entry(&body, trials).expect("our batch is in the file");
    assert_eq!(entry.get("done"), Some(&Json::Bool(true)));
    assert_eq!(
        entry.get("trials_done").and_then(|v| v.as_f64()),
        Some(trials as f64)
    );
    assert_eq!(
        entry.get("losses").and_then(|v| v.as_f64()),
        Some(summary.p_loss.successes as f64)
    );
    let p = entry.get("p_loss").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(
        p.to_bits(),
        summary.p_loss.value().to_bits(),
        "online p_loss must equal the batch summary exactly"
    );
    let events = entry.get("events").and_then(|v| v.as_f64()).unwrap();
    let expected = (summary.events.mean() * summary.trials() as f64).round();
    assert_eq!(events, expected, "event counter matches the summary");
}

fn assert_running_identical(a: &Running, b: &Running, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{what}: mean");
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: min");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: max");
}

fn assert_summaries_identical(a: &McSummary, b: &McSummary) {
    assert_eq!(a.trials(), b.trials());
    assert_eq!(a.p_loss.successes, b.p_loss.successes);
    assert_eq!(a.p_redirection.successes, b.p_redirection.successes);
    assert_running_identical(&a.failures, &b.failures, "failures");
    assert_running_identical(&a.rebuilds, &b.rebuilds, "rebuilds");
    assert_running_identical(&a.redirections, &b.redirections, "redirections");
    assert_running_identical(&a.lost_groups, &b.lost_groups, "lost_groups");
    assert_running_identical(&a.events, &b.events, "events");
    assert_eq!(a.vulnerability.to_compact(), b.vulnerability.to_compact());
    assert_eq!(a.queue_delay.to_compact(), b.queue_delay.to_compact());
    assert_eq!(a.fanout.to_compact(), b.fanout.to_compact());
}

#[test]
fn golden_results_and_artifacts_identical_with_monitor_on() {
    let cfg = tiny();
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let tl_off = tmp.join(format!("farm-cm-golden-tl-off-{pid}.csv"));
    let tl_on = tmp.join(format!("farm-cm-golden-tl-on-{pid}.csv"));

    // Same batch, same timeline telemetry; the only difference is the
    // campaign monitor. Single-threaded so the comparison is exact.
    let timeline = |path: &std::path::Path| {
        Some(TimelineSpec {
            path: path.to_str().unwrap().to_string(),
            interval_secs: None,
        })
    };
    let off = ObsOptions {
        timeline: timeline(&tl_off),
        ..ObsOptions::off()
    };
    let on = ObsOptions {
        timeline: timeline(&tl_on),
        ..monitor_obs()
    };

    let (base, _) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &off);
    let (monitored, _) = run_trials_observed(&cfg, 2004, 6, TrialMode::Full, 1, &on);
    assert_summaries_identical(&base, &monitored);

    // The timeline artifact is byte-identical, monitor or not.
    let a = std::fs::read(&tl_off).expect("timeline (monitor off)");
    let b = std::fs::read(&tl_on).expect("timeline (monitor on)");
    std::fs::remove_file(&tl_off).ok();
    std::fs::remove_file(&tl_on).ok();
    assert!(a == b, "timeline artifact changed with the monitor on");
}
